package cst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastmatch/graph"
	"fastmatch/internal/order"
)

// labeledPath builds a data graph with two A-B edges, one labelled
// "knows"(1) and one labelled "follows"(2).
func labeledPairs() *graph.Graph {
	b := graph.NewBuilder(4, 2)
	b.AddVertex(0) // A
	b.AddVertex(1) // B
	b.AddVertex(0) // A
	b.AddVertex(1) // B
	b.AddEdgeLabeled(0, 1, 1)
	b.AddEdgeLabeled(2, 3, 2)
	return b.MustBuild()
}

func TestCSTRespectsEdgeLabels(t *testing.T) {
	g := labeledPairs()
	q := graph.MustQuery("lq", []graph.Label{0, 1}, [][2]graph.QueryVertex{{0, 1}})
	if err := q.SetEdgeLabel(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	tr := order.BuildBFSTree(q, 0)
	c := Build(q, g, tr)
	got := CollectAll(c, order.Order{0, 1})
	if len(got) != 1 {
		t.Fatalf("found %d embeddings, want 1 (only the label-1 edge)", len(got))
	}
	if got[0][0] != 0 || got[0][1] != 1 {
		t.Errorf("embedding %v, want [0 1]", got[0])
	}
	// Unlabeled query matches both edges.
	q2 := graph.MustQuery("uq", []graph.Label{0, 1}, [][2]graph.QueryVertex{{0, 1}})
	c2 := Build(q2, g, order.BuildBFSTree(q2, 0))
	if n := Count(c2, order.Order{0, 1}); n != 2 {
		t.Errorf("unlabeled query found %d, want 2", n)
	}
}

func TestCSTRespectsArcLabels(t *testing.T) {
	// Directed encoding: data edge 0→1 labelled 7 forward, 8 backward.
	b := graph.NewBuilder(2, 1)
	b.AddVertex(0)
	b.AddVertex(1)
	b.AddEdgeArcs(0, 1, 7, 8)
	g := b.MustBuild()

	match := graph.MustQuery("m", []graph.Label{0, 1}, [][2]graph.QueryVertex{{0, 1}})
	if err := match.SetEdgeArcLabels(0, 1, 7, 8); err != nil {
		t.Fatal(err)
	}
	c := Build(match, g, order.BuildBFSTree(match, 0))
	if n := Count(c, order.Order{0, 1}); n != 1 {
		t.Errorf("direction-consistent query found %d, want 1", n)
	}

	// Reversed direction must not match.
	rev := graph.MustQuery("r", []graph.Label{0, 1}, [][2]graph.QueryVertex{{0, 1}})
	if err := rev.SetEdgeArcLabels(0, 1, 8, 7); err != nil {
		t.Fatal(err)
	}
	c2 := Build(rev, g, order.BuildBFSTree(rev, 0))
	if n := Count(c2, order.Order{0, 1}); n != 0 {
		t.Errorf("direction-reversed query found %d, want 0", n)
	}
}

// randomEdgeLabeled builds a random graph with random edge labels in
// {1,2,3} by re-adding every edge of a generated graph with a label.
func randomEdgeLabeled(seed int64, rng *rand.Rand) *graph.Graph {
	base := graph.RandomUniform(graph.GenConfig{
		NumVertices: 60 + rng.Intn(60),
		NumLabels:   2,
		AvgDegree:   3 + rng.Float64()*3,
		Seed:        seed,
	})
	b := graph.NewBuilder(base.NumVertices(), base.NumEdges())
	for v := 0; v < base.NumVertices(); v++ {
		b.AddVertex(base.Label(graph.VertexID(v)))
	}
	for v := 0; v < base.NumVertices(); v++ {
		for _, w := range base.Neighbors(graph.VertexID(v)) {
			if graph.VertexID(v) < w {
				b.AddEdgeLabeled(graph.VertexID(v), w, graph.EdgeLabel(1+rng.Intn(3)))
			}
		}
	}
	return b.MustBuild()
}

// TestEdgeLabelSoundnessProperty: on random edge-labeled inputs, the CST
// pipeline agrees with brute-force enumeration that checks edge labels.
func TestEdgeLabelSoundnessProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomEdgeLabeled(seed, rng)
		q := graph.RandomConnectedQuery("rq", 2+rng.Intn(3), rng.Intn(2), 2, rng)
		// Label a random subset of query edges.
		for u := 0; u < q.NumVertices(); u++ {
			for _, w := range q.Neighbors(u) {
				if u < w && rng.Float64() < 0.5 {
					if err := q.SetEdgeLabel(u, w, graph.EdgeLabel(1+rng.Intn(3))); err != nil {
						return false
					}
				}
			}
		}
		tr := order.BuildBFSTree(q, 0)
		c := Build(q, g, tr)
		o := order.PathBased(tr, c)
		got := CollectAll(c, o)
		for _, e := range got {
			if err := graph.VerifyEmbedding(q, g, e); err != nil {
				t.Logf("seed %d: invalid: %v", seed, err)
				return false
			}
		}
		// Brute force with label checks.
		want := 0
		n := q.NumVertices()
		mapping := make(graph.Embedding, n)
		used := map[graph.VertexID]bool{}
		var rec func(u int)
		rec = func(u int) {
			if u == n {
				want++
				return
			}
		cand:
			for _, v := range g.VerticesWithLabel(q.Label(u)) {
				if used[v] {
					continue
				}
				for _, w := range q.Neighbors(u) {
					if w < u {
						if !g.HasEdgeLabeled(mapping[w], v, q.EdgeLabel(w, u)) ||
							!g.HasEdgeLabeled(v, mapping[w], q.EdgeLabel(u, w)) {
							continue cand
						}
					}
				}
				mapping[u] = v
				used[v] = true
				rec(u + 1)
				used[v] = false
			}
		}
		rec(0)
		if len(got) != want {
			t.Logf("seed %d: CST %d vs brute %d", seed, len(got), want)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
