package cst

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fastmatch/graph"
	"fastmatch/internal/order"
)

// makeSyntheticCST builds a CST directly from explicit candidate sets and
// tree adjacency, for paper-exact tests of the workload DP and partitioner
// (Fig. 4 does not correspond to the Fig. 1 data graph).
//
// cands[u] lists data vertices; adjOut maps "from,to" pairs to per-candidate
// target index lists.
func makeSyntheticCST(q *graph.Query, tr *order.Tree, cands [][]graph.VertexID, adjPairs map[[2]graph.QueryVertex][][]CandIndex) *CST {
	c := newCST(q, tr)
	c.Cand = cands
	for pair, lists := range adjPairs {
		a := Adj{Offsets: make([]int32, len(cands[pair[0]])+1)}
		for i, targets := range lists {
			a.Targets = append(a.Targets, targets...)
			a.Offsets[i+1] = int32(len(a.Targets))
		}
		c.setAdj(pair[0], pair[1], a)
		// Mirror.
		rev := Adj{Offsets: make([]int32, len(cands[pair[1]])+1)}
		buckets := make([][]CandIndex, len(cands[pair[1]]))
		for i, targets := range lists {
			for _, j := range targets {
				buckets[j] = append(buckets[j], CandIndex(i))
			}
		}
		for j, b := range buckets {
			rev.Targets = append(rev.Targets, b...)
			rev.Offsets[j+1] = int32(len(rev.Targets))
		}
		c.setAdj(pair[1], pair[0], rev)
	}
	// Adjacency was installed directly, bypassing the arena assembler that
	// normally folds in the partition statistics.
	c.recomputeStats()
	return c
}

// fig4CST reproduces the CST of Fig. 4(a): tree u0→{u1,u2}, u1→u3;
// candidates C(u0)={v1,v2}, C(u1)={v3,v4,v5}, C(u2)={v6,v7,v8},
// C(u3)={v9,v10}; adjacency per Example 3/4.
func fig4CST() *CST {
	// Query shaped so its BFS tree from u0 is u0→{u1,u2}, u1→u3.
	q := graph.MustQuery("fig4", []graph.Label{0, 1, 2, 3},
		[][2]graph.QueryVertex{{0, 1}, {0, 2}, {1, 3}})
	tr := order.BuildBFSTree(q, 0)
	cands := [][]graph.VertexID{
		{1, 2},    // C(u0): v1 v2
		{3, 4, 5}, // C(u1): v3 v4 v5
		{6, 7, 8}, // C(u2): v6 v7 v8
		{9, 10},   // C(u3): v9 v10
	}
	adj := map[[2]graph.QueryVertex][][]CandIndex{
		{0, 1}: {{0, 2}, {0, 1}},   // v1→{v3,v5}, v2→{v3,v4}
		{0, 2}: {{0, 2}, {1}},      // v1→{v6,v8}, v2→{v7}
		{1, 3}: {{0}, {0, 1}, {1}}, // v3→{v9}, v4→{v9,v10}, v5→{v10}
	}
	return makeSyntheticCST(q, tr, cands, adj)
}

func TestWorkloadMatchesPaperExample4(t *testing.T) {
	c := fig4CST()
	table := PerCandidateWorkload(c)
	// Leaves: c_{u3}(v9)=c_{u3}(v10)=1, c_{u2}(*)=1.
	for _, v := range table[3] {
		if v != 1 {
			t.Errorf("u3 leaf workload %v, want 1", table[3])
		}
	}
	for _, v := range table[2] {
		if v != 1 {
			t.Errorf("u2 leaf workload %v, want 1", table[2])
		}
	}
	// c_{u1} = [1, 2, 1] (v3, v4, v5).
	wantU1 := []float64{1, 2, 1}
	for i, w := range wantU1 {
		if table[1][i] != w {
			t.Errorf("c_u1[%d] = %v, want %v", i, table[1][i], w)
		}
	}
	// c_{u0}(v1) = 4, c_{u0}(v2) = 3; W = 7.
	if table[0][0] != 4 || table[0][1] != 3 {
		t.Errorf("c_u0 = %v, want [4 3]", table[0])
	}
	if w := EstimateWorkload(c); w != 7 {
		t.Errorf("W_CST = %v, want 7", w)
	}
}

func TestWorkloadAgreesWithBruteTreeCount(t *testing.T) {
	c := fig4CST()
	if got, want := CountTreeEmbeddings(c), int64(7); got != want {
		t.Errorf("CountTreeEmbeddings = %d, want %d", got, want)
	}
}

// Property: on real CSTs built from random graphs, the DP equals the
// explicit tree-mapping count.
func TestWorkloadDPEqualsEnumerationProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomUniform(graph.GenConfig{
			NumVertices: 40 + rng.Intn(60),
			NumLabels:   2 + rng.Intn(3),
			AvgDegree:   2 + rng.Float64()*3,
			Seed:        seed,
		})
		q := graph.RandomConnectedQuery("rq", 2+rng.Intn(3), rng.Intn(2), g.NumLabels(), rng)
		tr := order.BuildBFSTree(q, 0)
		c := Build(q, g, tr)
		dp := EstimateWorkload(c)
		brute := float64(CountTreeEmbeddings(c))
		return math.Abs(dp-brute) < 1e-6*(1+brute)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Workload is an upper bound on the true embedding count (false positives
// are ignored, never true positives).
func TestWorkloadUpperBoundsEmbeddings(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomUniform(graph.GenConfig{
			NumVertices: 80, NumLabels: 2, AvgDegree: 4, Seed: seed,
		})
		q := graph.RandomConnectedQuery("rq", 3, rng.Intn(2), 2, rng)
		tr := order.BuildBFSTree(q, 0)
		c := Build(q, g, tr)
		o := order.PathBased(tr, c)
		return EstimateWorkload(c) >= float64(Count(c, o))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
