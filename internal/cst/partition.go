package cst

import (
	"fastmatch/graph"
	"fastmatch/internal/mathutil"
	"fastmatch/internal/order"
)

// PartitionConfig carries the partition thresholds of Section V-B.
type PartitionConfig struct {
	// MaxSizeBytes is δS, the BRAM budget a partition must fit in.
	MaxSizeBytes int64
	// MaxCandDegree is δD, the longest candidate adjacency list the FPGA's
	// partitioned-array ports can probe in one cycle (Port_max).
	MaxCandDegree int
	// FixedK, when > 0, overrides the greedy partition factor with a fixed
	// k — the Fig. 8 k-determination experiment.
	FixedK int
	// Steal, when non-nil, is offered every CST that still violates a
	// threshold before it is split further. Returning true takes ownership
	// of the CST (the caller will process it elsewhere — FAST-SHARE hands
	// such pieces to the CPU, "reducing the cost of partitioning" as
	// Section VII-B explains) and stops its recursion.
	Steal func(*CST) bool
	// Cancel, when non-nil, is polled between restrict-and-recurse steps.
	// Once it returns true the partitioners stop producing: no further
	// process calls or Steal offers are made, in-flight concurrent workers
	// drain their queued tasks cheaply and exit, and ordered mode abandons
	// its speculation. The piece count returned by a cancelled run reflects
	// only the pieces delivered before cancellation was observed.
	Cancel func() bool
}

// cancelled reports whether a Cancel hook is installed and has fired.
func (cfg PartitionConfig) cancelled() bool {
	return cfg.Cancel != nil && cfg.Cancel()
}

// DefaultPartitionConfig mirrors the Alveo U200 deployment: 35 MB of BRAM
// (we budget half of it for the CST, the rest holds the partial-results
// buffer) and 512 access ports.
func DefaultPartitionConfig() PartitionConfig {
	return PartitionConfig{
		MaxSizeBytes:  16 << 20,
		MaxCandDegree: 512,
	}
}

// Fits reports whether c satisfies both thresholds.
func (cfg PartitionConfig) Fits(c *CST) bool {
	return c.SizeBytes() <= cfg.MaxSizeBytes && c.MaxCandDegree() <= cfg.MaxCandDegree
}

// Partition splits c into pieces that each satisfy cfg, following
// Algorithm 2: walk the matching order; at vertex u = O[index], choose the
// partition factor k (greedy: the violation ratio; or cfg.FixedK), split
// C(u) into k even chunks, restrict the CST to each chunk, and recurse when
// a piece still violates a threshold. Pieces are passed to process in the
// order they become valid, which is how the scheduler overlaps partitioning
// with FPGA execution. The partitions' search spaces are disjoint and their
// union is exactly c's search space (tested property).
//
// rec's control flow is mirrored by the two concurrent producers in
// concurrent.go (handle/handleChunk and computeNode/computeChunk), and the
// ordered mode's byte-identical-schedule guarantee depends on the mirrors
// staying in lockstep: any change to the split rules here must be made in
// both, and partition_prop_test.go + FuzzPartitionCounts are the gate that
// catches a divergence.
func Partition(c *CST, o order.Order, cfg PartitionConfig, process func(*CST)) int {
	count := 0
	// One scratch serves the whole recursion; it carries the cancel hook
	// into restrict itself (amortised poll), so even a single huge restrict
	// observes cancellation promptly.
	sc := &restrictScratch{cancel: cfg.Cancel}
	var rec func(cur *CST, index int)
	rec = func(cur *CST, index int) {
		if cfg.cancelled() {
			return
		}
		if cfg.Fits(cur) || index >= len(o) {
			// index can run off the end when every C(u) is a singleton and
			// the CST still violates a threshold; it cannot be split
			// further, so it is processed as-is (the kernel falls back to
			// a multi-cycle probe for over-long lists).
			process(cur)
			count++
			return
		}
		if cfg.Steal != nil && cfg.Steal(cur) {
			count++
			return
		}
		u := o[index]
		k := cfg.partitionFactor(cur)
		if k > len(cur.Cand[u]) {
			k = len(cur.Cand[u])
		}
		if k <= 1 {
			// Cannot split at u; move to the next order position.
			rec(cur, index+1)
			return
		}
		for i := 0; i < k; i++ {
			if cfg.cancelled() {
				return
			}
			chunk := evenChunk(len(cur.Cand[u]), k, i)
			part := restrict(cur, u, chunk, sc)
			if part == nil {
				return // cancelled mid-restrict: stop producing
			}
			if part.IsEmpty() {
				continue // restriction stranded a branch: no embeddings here
			}
			switch {
			case cfg.Fits(part):
				process(part)
				count++
			case len(part.Cand[u]) == 1:
				rec(part, index+1)
			default:
				rec(part, index)
			}
		}
	}
	rec(c, 0)
	return count
}

// partitionFactor implements line 2 of Algorithm 2: the larger of the two
// violation ratios, rounded up.
func (cfg PartitionConfig) partitionFactor(c *CST) int {
	if cfg.FixedK > 0 {
		return cfg.FixedK
	}
	k := 1
	if cfg.MaxSizeBytes > 0 {
		if r := mathutil.CeilDiv(c.SizeBytes(), cfg.MaxSizeBytes); int(r) > k {
			k = int(r)
		}
	}
	if cfg.MaxCandDegree > 0 {
		if r := mathutil.CeilDiv(c.MaxCandDegree(), cfg.MaxCandDegree); r > k {
			k = r
		}
	}
	return k
}

// evenChunk returns the half-open index range [lo,hi) of the i-th of k even
// chunks of n items.
func evenChunk(n, k, i int) [2]int {
	base, rem := n/k, n%k
	lo := i*base + min(i, rem)
	hi := lo + base
	if i < rem {
		hi++
	}
	return [2]int{lo, hi}
}

// restrictScratch holds restrict's per-call working state so that repeated
// restrict steps — the sequential recursion, and every worker of the
// concurrent producers — reuse buffers instead of allocating them per piece.
// Only bookkeeping lives here; everything that escapes into the produced
// CST is freshly allocated. A scratch is single-goroutine state: the
// sequential partitioner owns one, and each concurrent pool worker owns one.
type restrictScratch struct {
	inSub    []bool
	changed  []bool
	kept     [][]bool      // per vertex in u's subtree: which candidate indices survive
	keptList [][]CandIndex // kept indices, discovery order
	remap    [][]CandIndex // old index -> new index or -1
	tgtBuf   []CandIndex   // adjAssembler grow buffer, recycled across pieces

	// cancel is the owning partitioner's PartitionConfig.Cancel, threaded
	// into restrict itself so a single huge restrict step observes
	// cancellation mid-loop instead of only between pieces. ticks amortises
	// the poll (the internal/baseline deadline tick pattern): the hook —
	// typically a ctx.Err() check behind an atomic — runs once per 4096
	// loop iterations, keeping the hot loops branch-cheap. The counter
	// deliberately persists across restrict calls on the same scratch, so
	// many small pieces amortise exactly like one large one.
	cancel func() bool
	ticks  uint32
}

// polled reports whether the owning partitioner was cancelled, checking the
// hook only every 4096th call.
func (sc *restrictScratch) polled() bool {
	if sc.cancel == nil {
		return false
	}
	sc.ticks++
	if sc.ticks&4095 != 1 {
		return false
	}
	return sc.cancel()
}

// grow sizes the scratch for an n-vertex query and clears the per-vertex
// flags; the inner buffers are cleared lazily where they are (re)used.
func (sc *restrictScratch) grow(n int) {
	if cap(sc.inSub) < n {
		sc.inSub = make([]bool, n)
		sc.changed = make([]bool, n)
		sc.kept = make([][]bool, n)
		sc.keptList = make([][]CandIndex, n)
		sc.remap = make([][]CandIndex, n)
	}
	sc.inSub = sc.inSub[:n]
	sc.changed = sc.changed[:n]
	sc.kept = sc.kept[:n]
	sc.keptList = sc.keptList[:n]
	sc.remap = sc.remap[:n]
	clear(sc.inSub)
	clear(sc.changed)
}

// clearedBools returns b resized to n with all entries false, reusing its
// capacity when possible.
func clearedBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	clear(b)
	return b
}

// restrict builds a new CST from cur with C(u) limited to the given index
// chunk. Vertices preceding u in the order keep all candidates (lines 7-8 of
// Algorithm 2); vertices in u's tree subtree keep only candidates that can
// reach the chunk through tree edges (lines 9-12) — every other vertex
// trivially reaches the chunk through the unrestricted prefix. Adjacency
// lists are rebuilt against the kept candidates (line 13).
//
// restrict polls sc's amortised cancel hook inside its reachability and
// rebuild loops and returns nil once it fires, so a cancelled partitioner's
// latency is bounded by ~4096 candidate rows rather than by one full
// restrict over a huge piece. Callers must treat a nil return as "stop
// producing", never as an empty piece.
func restrict(cur *CST, u graph.QueryVertex, chunk [2]int, sc *restrictScratch) *CST {
	t := cur.Tree
	n := cur.Query.NumVertices()

	sc.grow(n)
	// inSub[w] marks u's tree subtree: only those vertices carry
	// per-candidate bookkeeping at all (everything else keeps its whole
	// candidate set).
	inSub := sc.inSub
	markSubtree(t, u, inSub)
	kept, keptList := sc.kept, sc.keptList
	for w := 0; w < n; w++ {
		if inSub[w] {
			kept[w] = clearedBools(kept[w], len(cur.Cand[w]))
			keptList[w] = keptList[w][:0]
		}
	}
	for i := chunk[0]; i < chunk[1]; i++ {
		if sc.polled() {
			return nil
		}
		kept[u][i] = true
		keptList[u] = append(keptList[u], CandIndex(i))
	}
	// Top-down reachability through tree edges inside u's subtree. Only
	// the kept parent candidates are walked, so a piece costs work
	// proportional to its own size rather than the whole CST — this is
	// what keeps recursive partitioning of large CSTs near-linear.
	for _, w := range t.BFSOrder {
		if !inSub[w] || w == u {
			continue
		}
		wp := t.Parent[w] // wp is in the subtree too (only u's parent is outside)
		adj := cur.Edge(wp, w)
		kw, lw := kept[w], keptList[w]
		for _, pi := range keptList[wp] {
			if sc.polled() {
				return nil
			}
			for _, ci := range adj.Neighbors(pi) {
				if !kw[ci] {
					kw[ci] = true
					lw = append(lw, ci)
				}
			}
		}
		keptList[w] = lw
	}

	// Materialise the restricted CST: remap candidate indices, then filter
	// every adjacency list through the remap. Vertices outside u's subtree
	// keep their candidate sets verbatim, so any adjacency list between
	// two unchanged vertices is shared with the parent CST rather than
	// copied (its views alias the parent's arenas) — CSTs are immutable
	// after construction, and this turns the recursive partitioning of a
	// large CST from quadratic copying into work proportional to the
	// restricted subtrees only. Everything the piece owns lands in per-piece
	// arenas — one candidate arena, one offsets arena, one targets arena —
	// so a restrict step performs O(1) allocations regardless of how many
	// vertices changed; the targets grow buffer is recycled through sc.
	part := newCST(cur.Query, t)
	changed, remap := sc.changed, sc.remap
	totalKept := 0
	for w := 0; w < n; w++ {
		// keptList holds distinct indices, so full length means all kept.
		if inSub[w] && len(keptList[w]) != len(cur.Cand[w]) {
			changed[w] = true
			totalKept += len(keptList[w])
		}
	}
	candArena := make([]graph.VertexID, 0, totalKept)
	for w := 0; w < n; w++ {
		if !changed[w] {
			part.Cand[w] = cur.Cand[w]
			continue
		}
		if cap(remap[w]) < len(cur.Cand[w]) {
			remap[w] = make([]CandIndex, len(cur.Cand[w]))
		}
		remap[w] = remap[w][:len(cur.Cand[w])]
		lo := len(candArena)
		for i, v := range cur.Cand[w] {
			if sc.polled() {
				return nil
			}
			if kept[w][i] {
				remap[w][i] = CandIndex(len(candArena) - lo)
				candArena = append(candArena, v)
			} else {
				remap[w][i] = -1
			}
		}
		part.Cand[w] = candArena[lo:len(candArena):len(candArena)]
	}
	for _, cands := range part.Cand {
		part.sizeBytes += int64(len(cands)) * 4
	}

	// Adjacency: share untouched edges (folding their size and cached
	// longest-list into the piece's partition stats in O(1)), rebuild the
	// rest through the remap into the piece's own arenas.
	offTotal, rebuilt := 0, 0
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			a := cur.edgeRef(from, to)
			if !a.Valid() {
				continue
			}
			if !changed[from] && !changed[to] {
				part.setAdj(from, to, *a) // share: both endpoints untouched
				part.sizeBytes += int64(len(a.Offsets))*4 + int64(len(a.Targets))*4
				if int(a.maxDeg) > part.maxDeg {
					part.maxDeg = int(a.maxDeg)
				}
				continue
			}
			offTotal += len(part.Cand[from]) + 1
			rebuilt++
		}
	}
	asm := newAdjAssembler(offTotal, sc.tgtBuf, rebuilt)
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			a := cur.edgeRef(from, to)
			if !a.Valid() || (!changed[from] && !changed[to]) {
				continue
			}
			off := asm.begin(len(part.Cand[from]))
			tgtLo := len(asm.tgt)
			for i := range cur.Cand[from] {
				if sc.polled() {
					return nil
				}
				ni := CandIndex(i)
				if changed[from] {
					ni = remap[from][i]
					if ni < 0 {
						continue
					}
				}
				for _, j := range a.Neighbors(CandIndex(i)) {
					nj := j
					if changed[to] {
						nj = remap[to][j]
						if nj < 0 {
							continue
						}
					}
					asm.tgt = append(asm.tgt, nj)
				}
				off[ni+1] = int32(len(asm.tgt) - tgtLo)
			}
			var maxDeg int32
			for r := 0; r+1 < len(off); r++ {
				if d := off[r+1] - off[r]; d > maxDeg {
					maxDeg = d
				}
			}
			asm.commit(from, to, len(part.Cand[from]), tgtLo, maxDeg)
		}
	}
	sc.tgtBuf = asm.finish(part)
	return part
}

// markSubtree sets in[w] for u and all its tree descendants; in must be
// pre-cleared and len(in) == |V(q)|.
func markSubtree(t *order.Tree, u graph.QueryVertex, in []bool) {
	in[u] = true
	// BFSOrder lists parents before children, so one pass suffices.
	for _, w := range t.BFSOrder {
		if w != t.Root && in[t.Parent[w]] {
			in[w] = true
		}
	}
	in[u] = true
}
