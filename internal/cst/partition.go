package cst

import (
	"fastmatch/graph"
	"fastmatch/internal/mathutil"
	"fastmatch/internal/order"
)

// PartitionConfig carries the partition thresholds of Section V-B.
type PartitionConfig struct {
	// MaxSizeBytes is δS, the BRAM budget a partition must fit in.
	MaxSizeBytes int64
	// MaxCandDegree is δD, the longest candidate adjacency list the FPGA's
	// partitioned-array ports can probe in one cycle (Port_max).
	MaxCandDegree int
	// FixedK, when > 0, overrides the greedy partition factor with a fixed
	// k — the Fig. 8 k-determination experiment.
	FixedK int
	// Steal, when non-nil, is offered every CST that still violates a
	// threshold before it is split further. Returning true takes ownership
	// of the CST (the caller will process it elsewhere — FAST-SHARE hands
	// such pieces to the CPU, "reducing the cost of partitioning" as
	// Section VII-B explains) and stops its recursion.
	Steal func(*CST) bool
	// Cancel, when non-nil, is polled between restrict-and-recurse steps.
	// Once it returns true the partitioners stop producing: no further
	// process calls or Steal offers are made, in-flight concurrent workers
	// drain their queued tasks cheaply and exit, and ordered mode abandons
	// its speculation. The piece count returned by a cancelled run reflects
	// only the pieces delivered before cancellation was observed.
	Cancel func() bool
}

// cancelled reports whether a Cancel hook is installed and has fired.
func (cfg PartitionConfig) cancelled() bool {
	return cfg.Cancel != nil && cfg.Cancel()
}

// DefaultPartitionConfig mirrors the Alveo U200 deployment: 35 MB of BRAM
// (we budget half of it for the CST, the rest holds the partial-results
// buffer) and 512 access ports.
func DefaultPartitionConfig() PartitionConfig {
	return PartitionConfig{
		MaxSizeBytes:  16 << 20,
		MaxCandDegree: 512,
	}
}

// Fits reports whether c satisfies both thresholds.
func (cfg PartitionConfig) Fits(c *CST) bool {
	return c.SizeBytes() <= cfg.MaxSizeBytes && c.MaxCandDegree() <= cfg.MaxCandDegree
}

// Partition splits c into pieces that each satisfy cfg, following
// Algorithm 2: walk the matching order; at vertex u = O[index], choose the
// partition factor k (greedy: the violation ratio; or cfg.FixedK), split
// C(u) into k even chunks, restrict the CST to each chunk, and recurse when
// a piece still violates a threshold. Pieces are passed to process in the
// order they become valid, which is how the scheduler overlaps partitioning
// with FPGA execution. The partitions' search spaces are disjoint and their
// union is exactly c's search space (tested property).
//
// rec's control flow is mirrored by the two concurrent producers in
// concurrent.go (handle/handleChunk and computeNode/computeChunk), and the
// ordered mode's byte-identical-schedule guarantee depends on the mirrors
// staying in lockstep: any change to the split rules here must be made in
// both, and partition_prop_test.go + FuzzPartitionCounts are the gate that
// catches a divergence.
func Partition(c *CST, o order.Order, cfg PartitionConfig, process func(*CST)) int {
	count := 0
	var rec func(cur *CST, index int)
	rec = func(cur *CST, index int) {
		if cfg.cancelled() {
			return
		}
		if cfg.Fits(cur) || index >= len(o) {
			// index can run off the end when every C(u) is a singleton and
			// the CST still violates a threshold; it cannot be split
			// further, so it is processed as-is (the kernel falls back to
			// a multi-cycle probe for over-long lists).
			process(cur)
			count++
			return
		}
		if cfg.Steal != nil && cfg.Steal(cur) {
			count++
			return
		}
		u := o[index]
		k := cfg.partitionFactor(cur)
		if k > len(cur.Cand[u]) {
			k = len(cur.Cand[u])
		}
		if k <= 1 {
			// Cannot split at u; move to the next order position.
			rec(cur, index+1)
			return
		}
		for i := 0; i < k; i++ {
			if cfg.cancelled() {
				return
			}
			chunk := evenChunk(len(cur.Cand[u]), k, i)
			part := restrict(cur, u, chunk)
			if part.IsEmpty() {
				continue // restriction stranded a branch: no embeddings here
			}
			switch {
			case cfg.Fits(part):
				process(part)
				count++
			case len(part.Cand[u]) == 1:
				rec(part, index+1)
			default:
				rec(part, index)
			}
		}
	}
	rec(c, 0)
	return count
}

// partitionFactor implements line 2 of Algorithm 2: the larger of the two
// violation ratios, rounded up.
func (cfg PartitionConfig) partitionFactor(c *CST) int {
	if cfg.FixedK > 0 {
		return cfg.FixedK
	}
	k := 1
	if cfg.MaxSizeBytes > 0 {
		if r := mathutil.CeilDiv(c.SizeBytes(), cfg.MaxSizeBytes); int(r) > k {
			k = int(r)
		}
	}
	if cfg.MaxCandDegree > 0 {
		if r := mathutil.CeilDiv(c.MaxCandDegree(), cfg.MaxCandDegree); r > k {
			k = r
		}
	}
	return k
}

// evenChunk returns the half-open index range [lo,hi) of the i-th of k even
// chunks of n items.
func evenChunk(n, k, i int) [2]int {
	base, rem := n/k, n%k
	lo := i*base + min(i, rem)
	hi := lo + base
	if i < rem {
		hi++
	}
	return [2]int{lo, hi}
}

// restrict builds a new CST from cur with C(u) limited to the given index
// chunk. Vertices preceding u in the order keep all candidates (lines 7-8 of
// Algorithm 2); vertices in u's tree subtree keep only candidates that can
// reach the chunk through tree edges (lines 9-12) — every other vertex
// trivially reaches the chunk through the unrestricted prefix. Adjacency
// lists are rebuilt against the kept candidates (line 13).
func restrict(cur *CST, u graph.QueryVertex, chunk [2]int) *CST {
	t := cur.Tree
	n := cur.Query.NumVertices()

	// kept[w] marks which candidate indices of w survive; nil means all of
	// them (vertices outside u's subtree are never restricted, so they
	// carry no per-candidate bookkeeping at all).
	kept := make([][]bool, n)
	keptList := make([][]CandIndex, n) // kept indices, discovery order
	inSubtree := subtreeOf(t, u)
	for w := 0; w < n; w++ {
		if inSubtree[w] {
			kept[w] = make([]bool, len(cur.Cand[w]))
		}
	}
	for i := chunk[0]; i < chunk[1]; i++ {
		kept[u][i] = true
		keptList[u] = append(keptList[u], CandIndex(i))
	}
	// Top-down reachability through tree edges inside u's subtree. Only
	// the kept parent candidates are walked, so a piece costs work
	// proportional to its own size rather than the whole CST — this is
	// what keeps recursive partitioning of large CSTs near-linear.
	for _, w := range t.BFSOrder {
		if !inSubtree[w] || w == u {
			continue
		}
		wp := t.Parent[w] // wp is in the subtree too (only u's parent is outside)
		for _, pi := range keptList[wp] {
			for _, ci := range cur.Adjacency(wp, w, pi) {
				if !kept[w][ci] {
					kept[w][ci] = true
					keptList[w] = append(keptList[w], ci)
				}
			}
		}
	}

	// Materialise the restricted CST: remap candidate indices, then filter
	// every adjacency list through the remap. Vertices outside u's subtree
	// keep their candidate sets verbatim, so any adjacency list between
	// two unchanged vertices is shared with the parent CST rather than
	// copied — CSTs are immutable after construction, and this turns the
	// recursive partitioning of a large CST from quadratic copying into
	// work proportional to the restricted subtrees only.
	part := &CST{
		Query: cur.Query,
		Tree:  t,
		Cand:  make([][]graph.VertexID, n),
		adj:   make(map[edgeKey]*adjList),
	}
	changed := make([]bool, n)
	remap := make([][]CandIndex, n) // old index -> new index or -1
	for w := 0; w < n; w++ {
		allKept := kept[w] == nil
		if !allKept {
			allKept = true
			for i := range kept[w] {
				if !kept[w][i] {
					allKept = false
					break
				}
			}
		}
		if allKept {
			part.Cand[w] = cur.Cand[w]
			continue
		}
		changed[w] = true
		remap[w] = make([]CandIndex, len(cur.Cand[w]))
		for i := range remap[w] {
			remap[w][i] = -1
		}
		for i, v := range cur.Cand[w] {
			if kept[w][i] {
				remap[w][i] = CandIndex(len(part.Cand[w]))
				part.Cand[w] = append(part.Cand[w], v)
			}
		}
	}
	for key, a := range cur.adj {
		if !changed[key.From] && !changed[key.To] {
			part.adj[key] = a // share: both endpoints untouched
			continue
		}
		na := &adjList{Offsets: make([]int32, len(part.Cand[key.From])+1)}
		for i := range cur.Cand[key.From] {
			ni := CandIndex(i)
			if changed[key.From] {
				ni = remap[key.From][i]
				if ni < 0 {
					continue
				}
			}
			for _, j := range a.neighbors(CandIndex(i)) {
				nj := j
				if changed[key.To] {
					nj = remap[key.To][j]
					if nj < 0 {
						continue
					}
				}
				na.Targets = append(na.Targets, nj)
			}
			na.Offsets[ni+1] = int32(len(na.Targets))
		}
		part.adj[key] = na
	}
	return part
}

// subtreeOf marks u and all its tree descendants.
func subtreeOf(t *order.Tree, u graph.QueryVertex) []bool {
	in := make([]bool, t.Query.NumVertices())
	in[u] = true
	// BFSOrder lists parents before children, so one pass suffices.
	for _, w := range t.BFSOrder {
		if w != t.Root && in[t.Parent[w]] {
			in[w] = true
		}
	}
	in[u] = true
	return in
}
