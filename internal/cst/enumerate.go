package cst

import (
	"fastmatch/graph"
	"fastmatch/internal/order"
)

// Enumerator is the CPU-side matcher in the kernel's prepared shape: Reset
// hoists everything a backtracking round touches — per-depth candidate
// arrays, the tree-parent CSR view, the non-tree edge-validation views and
// the matched-position of each — into depth-indexed slices, so Run touches
// contiguous state with no per-call derivation and no allocation (the only
// allocations are the embeddings handed to emit, which callers may retain).
// An Enumerator is single-goroutine state; pool it across calls (the host's
// δ-share drain and EnumerateParallel both do) to amortise the buffers.
type Enumerator struct {
	c *CST
	n int

	// Depth-indexed hoists, filled by Reset for the current (CST, order).
	candAt    [][]graph.VertexID // candAt[d] = C(o[d])
	parentAdj []Adj              // d>0: CSR view of Edge(parent(o[d]) → o[d])
	parentPos []int32            // depth at which o[d]'s tree parent was matched
	checkAdj  []Adj              // flattened edge-validation views, grouped by depth
	checkPos  []int32            // matched depth of each check's other endpoint
	checkOff  []int32            // checkOff[d]:checkOff[d+1] indexes checkAdj/checkPos
	posBuf    []int32            // query vertex -> order position

	mIdx  []CandIndex      // candidate index matched at each depth
	mVert []graph.VertexID // data vertex matched at each depth

	o       order.Order
	emit    func(graph.Embedding) bool
	take    func() bool
	count   int64
	stopped bool
}

// Reset prepares the enumerator for (c, o), reusing its buffers. The same
// enumerator can be Reset across CSTs of different queries.
func (e *Enumerator) Reset(c *CST, o order.Order) {
	n := c.Query.NumVertices()
	e.c, e.o, e.n = c, o, n
	if cap(e.candAt) < n {
		e.candAt = make([][]graph.VertexID, n)
		e.parentAdj = make([]Adj, n)
		e.parentPos = make([]int32, n)
		e.checkOff = make([]int32, n+1)
		e.posBuf = make([]int32, n)
		e.mIdx = make([]CandIndex, n)
		e.mVert = make([]graph.VertexID, n)
	}
	e.candAt = e.candAt[:n]
	e.parentAdj = e.parentAdj[:n]
	e.parentPos = e.parentPos[:n]
	e.checkOff = e.checkOff[:n+1]
	e.posBuf = e.posBuf[:n]
	e.mIdx = e.mIdx[:n]
	e.mVert = e.mVert[:n]

	pos := e.posBuf
	for i, u := range o {
		pos[u] = int32(i)
	}
	e.checkAdj = e.checkAdj[:0]
	e.checkPos = e.checkPos[:0]
	t := c.Tree
	for d, u := range o {
		e.candAt[d] = c.Cand[u]
		if d > 0 {
			up := t.Parent[u]
			e.parentAdj[d] = c.Edge(up, u)
			e.parentPos[d] = pos[up]
		}
		e.checkOff[d] = int32(len(e.checkAdj))
		for _, un := range c.Query.Neighbors(u) {
			if un == t.Parent[u] {
				continue // implied by candidate generation
			}
			if int(pos[un]) < d {
				e.checkAdj = append(e.checkAdj, c.Edge(u, un))
				e.checkPos = append(e.checkPos, pos[un])
			}
		}
	}
	e.checkOff[n] = int32(len(e.checkAdj))
}

// Run backtracks over the prepared CST and invokes emit for every embedding
// it contains, in matching order. If emit returns false, enumeration stops
// early. It returns the number of embeddings found (each found embedding
// counts, including the one a stopping emit refused). A nil emit counts
// without materialising anything.
func (e *Enumerator) Run(emit func(graph.Embedding) bool) int64 {
	e.emit, e.take = emit, nil
	return e.run()
}

// RunCounted is the budgeted count-only drain: take reserves one result
// slot per embedding, enumeration stops at the first refusal, and only
// granted reservations are counted — the δ-share contract of the host's
// runControl.
func (e *Enumerator) RunCounted(take func() bool) int64 {
	e.emit, e.take = nil, take
	return e.run()
}

func (e *Enumerator) run() int64 {
	e.count, e.stopped = 0, false
	if !e.c.IsEmpty() {
		e.rec(0)
	}
	e.emit, e.take = nil, nil
	return e.count
}

// rec is the prepared zero-alloc DFS matcher (PR 6): per-depth state lives
// in hoisted arrays, so steady-state enumeration performs no allocation
// except materialising an embedding for a collecting emit callback.
//
//fastmatch:hotpath
func (e *Enumerator) rec(depth int) {
	if depth == e.n {
		if e.take != nil {
			if !e.take() {
				e.stopped = true
				return
			}
			e.count++
			return
		}
		e.count++
		if e.emit != nil {
			//fastmatch:nolint hotpathalloc one embedding per emitted match; emit callers own the copy
			em := make(graph.Embedding, e.n)
			for d, u := range e.o {
				em[u] = e.mVert[d]
			}
			if !e.emit(em) {
				e.stopped = true
			}
		}
		return
	}
	cand := e.candAt[depth]
	if depth == 0 {
		for ci := CandIndex(0); int(ci) < len(cand); ci++ {
			e.mIdx[0] = ci
			e.mVert[0] = cand[ci]
			e.rec(1)
			if e.stopped {
				return
			}
		}
		return
	}
	cands := e.parentAdj[depth].Neighbors(e.mIdx[e.parentPos[depth]])
	chkLo, chkHi := e.checkOff[depth], e.checkOff[depth+1]
next:
	for _, ci := range cands {
		v := cand[ci]
		for d := 0; d < depth; d++ { // visited validation
			if e.mVert[d] == v {
				continue next
			}
		}
		for k := chkLo; k < chkHi; k++ { // edge validation
			if !e.checkAdj[k].Has(ci, e.mIdx[e.checkPos[k]]) {
				continue next
			}
		}
		e.mIdx[depth] = ci
		e.mVert[depth] = v
		e.rec(depth + 1)
		if e.stopped {
			return
		}
	}
}

// Enumerate backtracks over the CST following matching order o and invokes
// emit for every embedding of q in G contained in this CST. If emit returns
// false, enumeration stops early. It returns the number of embeddings
// emitted. This is the CPU-side matcher the scheduler uses for the host's
// share of work (Section V-C) and the reference oracle the kernel tests
// compare against; hot paths reuse an Enumerator directly instead of paying
// this wrapper's per-call preparation.
//
// Enumerate only reads the CST — Theorem 1's claim that the CST is a
// complete search space — so running it per partition and unioning results
// is equivalent to running it on the unpartitioned CST.
func Enumerate(c *CST, o order.Order, emit func(graph.Embedding) bool) int64 {
	var e Enumerator
	e.Reset(c, o)
	return e.Run(emit)
}

// Count returns the number of embeddings in the CST without materialising
// them.
func Count(c *CST, o order.Order) int64 {
	return Enumerate(c, o, nil)
}

// CollectAll enumerates and returns every embedding; tests and small
// examples use it. Avoid on large search spaces.
func CollectAll(c *CST, o order.Order) []graph.Embedding {
	var out []graph.Embedding
	Enumerate(c, o, func(e graph.Embedding) bool {
		out = append(out, e)
		return true
	})
	return out
}
