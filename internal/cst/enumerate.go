package cst

import (
	"fastmatch/graph"
	"fastmatch/internal/order"
)

// Enumerate backtracks over the CST following matching order o and invokes
// emit for every embedding of q in G contained in this CST. If emit returns
// false, enumeration stops early. It returns the number of embeddings
// emitted. This is the CPU-side matcher the scheduler uses for the host's
// share of work (Section V-C) and the reference oracle the kernel tests
// compare against.
//
// Enumerate only reads the CST — Theorem 1's claim that the CST is a
// complete search space — so running it per partition and unioning results
// is equivalent to running it on the unpartitioned CST.
func Enumerate(c *CST, o order.Order, emit func(graph.Embedding) bool) int64 {
	n := c.Query.NumVertices()
	pos := o.PositionOf()

	// checks[i] lists, for the vertex matched at position i, the earlier
	// query neighbours (other than the tree parent) whose CST edge must be
	// validated — exactly the kernel's edge-validation tasks.
	checks := make([][]graph.QueryVertex, n)
	for i, u := range o {
		for _, un := range c.Query.Neighbors(u) {
			if un == c.Tree.Parent[u] {
				continue // implied by candidate generation
			}
			if pos[un] < i {
				checks[i] = append(checks[i], un)
			}
		}
	}

	mappedIdx := make([]CandIndex, n)       // candidate index per query vertex
	mappedVert := make([]graph.VertexID, n) // data vertex per query vertex
	var count int64
	stopped := false

	var rec func(depth int)
	rec = func(depth int) {
		if stopped {
			return
		}
		if depth == n {
			count++
			if emit != nil {
				e := make(graph.Embedding, n)
				copy(e, mappedVert)
				if !emit(e) {
					stopped = true
				}
			}
			return
		}
		u := o[depth]
		var cands []CandIndex
		if depth == 0 {
			for i := range c.Cand[u] {
				cands = append(cands, CandIndex(i))
			}
		} else {
			up := c.Tree.Parent[u]
			cands = c.Adjacency(up, u, mappedIdx[up])
		}
	next:
		for _, ci := range cands {
			v := c.Cand[u][ci]
			for d := 0; d < depth; d++ { // visited validation
				if mappedVert[o[d]] == v {
					continue next
				}
			}
			for _, un := range checks[depth] { // edge validation
				if !c.HasCandEdge(u, un, ci, mappedIdx[un]) {
					continue next
				}
			}
			mappedIdx[u] = ci
			mappedVert[u] = v
			rec(depth + 1)
			if stopped {
				return
			}
		}
	}
	if !c.IsEmpty() {
		rec(0)
	}
	return count
}

// Count returns the number of embeddings in the CST without materialising
// them.
func Count(c *CST, o order.Order) int64 {
	return Enumerate(c, o, nil)
}

// CollectAll enumerates and returns every embedding; tests and small
// examples use it. Avoid on large search spaces.
func CollectAll(c *CST, o order.Order) []graph.Embedding {
	var out []graph.Embedding
	Enumerate(c, o, func(e graph.Embedding) bool {
		out = append(out, e)
		return true
	})
	return out
}
