package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastmatch/graph"
)

func TestLabelDegreeEstimator(t *testing.T) {
	q := fig1Query()
	g := fig1Data()
	est := LabelDegreeEstimator{Q: q, G: g}
	// u3 has label D(3), degree 1; data has three D vertices with degree ≥1.
	if got := est.CandCount(3); got != 3 {
		t.Errorf("CandCount(u3) = %d, want 3", got)
	}
	// Branching estimates are positive and bounded by the average degree.
	b := est.AvgBranch(0, 1)
	if b <= 0 || b > g.AvgDegree() {
		t.Errorf("AvgBranch = %v", b)
	}
}

func TestLabelDegreeEstimatorEmptyGraph(t *testing.T) {
	q := fig1Query()
	empty := graph.NewBuilder(0, 0).MustBuild()
	est := LabelDegreeEstimator{Q: q, G: empty}
	if est.CandCount(0) != 0 {
		t.Error("candidates on empty graph")
	}
	if est.AvgBranch(0, 1) != 0 {
		t.Error("branching on empty graph")
	}
}

// TestPathBasedCheapPathsFirst: with a designed estimator, the path-based
// order must expand the cheaper root-to-leaf path before the expensive one
// (CFL's "postpone Cartesian products" rationale).
func TestPathBasedCheapPathsFirst(t *testing.T) {
	// Star with two leaves: u0-u1, u0-u2.
	q := graph.MustQuery("star", []graph.Label{0, 1, 2},
		[][2]graph.QueryVertex{{0, 1}, {0, 2}})
	tr := BuildBFSTree(q, 0)
	cheap2 := fixedEstimator{cand: []int{5, 100, 2}, branch: map[[2]graph.QueryVertex]float64{
		{0, 1}: 50, {0, 2}: 1,
	}}
	o := PathBased(tr, cheap2)
	if o[1] != 2 {
		t.Errorf("order %v: expensive leaf expanded first", o)
	}
}

type fixedEstimator struct {
	cand   []int
	branch map[[2]graph.QueryVertex]float64
}

func (f fixedEstimator) CandCount(u graph.QueryVertex) int { return f.cand[u] }
func (f fixedEstimator) AvgBranch(a, b graph.QueryVertex) float64 {
	return f.branch[[2]graph.QueryVertex{a, b}]
}

// TestGreedyOrdersRespectTreeProperty: all strategy outputs are valid for
// random queries under a random estimator.
func TestGreedyOrdersRespectTreeProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := graph.RandomConnectedQuery("rq", 2+rng.Intn(6), rng.Intn(4), 3, rng)
		tr := BuildBFSTree(q, rng.Intn(q.NumVertices()))
		est := randomEstimator{rng: rand.New(rand.NewSource(seed + 1)), n: q.NumVertices()}
		for _, o := range []Order{
			PathBased(tr, est), CFLLike(tr, est), DAFLike(tr, est), CECILike(tr, est),
		} {
			if o.Validate(tr) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

type randomEstimator struct {
	rng *rand.Rand
	n   int
}

func (r randomEstimator) CandCount(u graph.QueryVertex) int { return 1 + (u*2654435761)%97 }
func (r randomEstimator) AvgBranch(a, b graph.QueryVertex) float64 {
	return float64(1+((a*31+b)*2654435761)%17) / 3
}

// TestCECILikeIsBFSBiased: the CECI order lists vertices level by level.
func TestCECILikeIsBFSBiased(t *testing.T) {
	q := fig1Query()
	g := fig1Data()
	tr := BuildBFSTree(q, 0)
	o := CECILike(tr, LabelDegreeEstimator{Q: q, G: g})
	for i := 1; i < len(o); i++ {
		if tr.Level[o[i]] < tr.Level[o[i-1]] {
			t.Errorf("order %v goes up a level at position %d", o, i)
		}
	}
}
