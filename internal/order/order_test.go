package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastmatch/graph"
)

// fig1Query recreates the paper's Fig. 1 query: A(u0)-B(u1), A-C(u2),
// B-C, C-D(u3).
func fig1Query() *graph.Query {
	return graph.MustQuery("fig1", []graph.Label{0, 1, 2, 3},
		[][2]graph.QueryVertex{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
}

func fig1Data() *graph.Graph {
	// Fig. 1(b): v1,v2:A v3..v6ish — we rebuild the exact data graph.
	// Labels: A=0 B=1 C=2 D=3 E=4.
	// Vertices: v1:A v2:A v3:C v4:B v5:C v6:B v7:C v8:D v9:D v10:D v11:E v12:E
	// (ids shifted to 0-based: v1→0 ... v12→11)
	b := graph.NewBuilder(12, 20)
	labels := []graph.Label{0, 0, 2, 1, 2, 1, 2, 3, 3, 3, 4, 4}
	for _, l := range labels {
		b.AddVertex(l)
	}
	edges := [][2]graph.VertexID{
		{0, 3}, {0, 2}, {3, 2}, // v1-v4, v1-v3, v4-v3
		{0, 5}, {1, 5}, {1, 4}, {5, 4}, // v1-v6, v2-v6, v2-v5, v6-v5
		{1, 6}, {6, 4}, // v2-v7, v7-v5
		{2, 8}, {4, 9}, {6, 10}, // v3-v9, v5-v10, v7-v11
		{3, 7}, {5, 7}, // v4-v8, v6-v8
		{6, 11}, // v7-v12
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

func TestBFSTreeStructure(t *testing.T) {
	q := fig1Query()
	tr := BuildBFSTree(q, 0)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.Root != 0 || tr.Parent[1] != 0 || tr.Parent[2] != 0 {
		t.Errorf("unexpected parents: %v", tr.Parent)
	}
	// u3 hangs off u2 (C), discovered from u2 at level 2.
	if tr.Parent[3] != 2 || tr.Level[3] != 2 {
		t.Errorf("u3: parent=%d level=%d", tr.Parent[3], tr.Level[3])
	}
	// The only non-tree edge is (u1,u2), as in the paper's Example 2.
	if len(tr.NonTreeEdges) != 1 || tr.NonTreeEdges[0] != [2]graph.QueryVertex{1, 2} {
		t.Errorf("NonTreeEdges = %v, want [[1 2]]", tr.NonTreeEdges)
	}
	nn := tr.NonTreeNeighbors(1)
	if len(nn) != 1 || nn[0] != 2 {
		t.Errorf("NonTreeNeighbors(1) = %v", nn)
	}
	leaves := tr.Leaves()
	if len(leaves) != 2 { // u1 and u3
		t.Errorf("Leaves = %v", leaves)
	}
	paths := tr.RootToLeafPaths()
	if len(paths) != 2 {
		t.Errorf("RootToLeafPaths = %v", paths)
	}
	for _, p := range paths {
		if p[0] != 0 {
			t.Errorf("path %v does not start at root", p)
		}
	}
}

func TestSelectRootPrefersSelective(t *testing.T) {
	q := fig1Query()
	g := fig1Data()
	root := SelectRoot(q, g)
	// A appears twice with degree ≥ 2 → score 2/2=1 for u0; D appears 3
	// times with degree 1, but u3 has degree 1 → score 3. u0 or u2 are the
	// selective picks; u2 (C, 3 candidates, degree 3) scores 1 as well.
	if root != 0 && root != 2 {
		t.Errorf("SelectRoot = %d, want 0 or 2", root)
	}
}

func TestOrderValidateCatchesBadOrders(t *testing.T) {
	q := fig1Query()
	tr := BuildBFSTree(q, 0)
	good := Order{0, 1, 2, 3}
	if err := good.Validate(tr); err != nil {
		t.Errorf("good order rejected: %v", err)
	}
	bad := []Order{
		{1, 0, 2, 3}, // doesn't start at root
		{0, 1, 2},    // too short
		{0, 1, 1, 3}, // repeated vertex
		{0, 3, 2, 1}, // u3 before its parent u2
		{0, 1, 3, 2}, // u3 before parent
	}
	for i, o := range bad {
		if err := o.Validate(tr); err == nil {
			t.Errorf("bad order %d (%v) accepted", i, o)
		}
	}
}

func TestStrategiesProduceValidOrders(t *testing.T) {
	q := fig1Query()
	g := fig1Data()
	tr := BuildBFSTree(q, SelectRoot(q, g))
	est := LabelDegreeEstimator{Q: q, G: g}
	for name, o := range map[string]Order{
		"path": PathBased(tr, est),
		"cfl":  CFLLike(tr, est),
		"daf":  DAFLike(tr, est),
		"ceci": CECILike(tr, est),
	} {
		if err := o.Validate(tr); err != nil {
			t.Errorf("%s order invalid: %v (order %v)", name, err, o)
		}
	}
}

func TestRandomConnectedProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := graph.RandomConnectedQuery("rq", 2+rng.Intn(6), rng.Intn(4), 3, rng)
		tr := BuildBFSTree(q, rng.Intn(q.NumVertices()))
		if err := tr.Validate(); err != nil {
			return false
		}
		o := RandomConnected(tr, rng)
		return o.Validate(tr) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAllConnectedEnumerates(t *testing.T) {
	q := fig1Query()
	tr := BuildBFSTree(q, 0)
	orders := AllConnected(tr, 0)
	// Orders must be distinct, valid, and include the canonical one.
	seen := make(map[string]bool)
	foundCanonical := false
	for _, o := range orders {
		if err := o.Validate(tr); err != nil {
			t.Fatalf("enumerated invalid order %v: %v", o, err)
		}
		key := ""
		for _, u := range o {
			key += string(rune('a' + u))
		}
		if seen[key] {
			t.Fatalf("duplicate order %v", o)
		}
		seen[key] = true
		if key == "abcd" {
			foundCanonical = true
		}
	}
	if !foundCanonical {
		t.Error("canonical order 0,1,2,3 not enumerated")
	}
	// Cap works.
	if capped := AllConnected(tr, 2); len(capped) != 2 {
		t.Errorf("cap ignored: got %d orders", len(capped))
	}
}

func TestAllConnectedMatchesValidOrderCount(t *testing.T) {
	// For the Fig. 1 query rooted at u0 the connected topological orders
	// are: 0123 is valid; u1 and u2 are interchangeable after root;
	// u3 requires u2. Enumerate by brute force over permutations.
	q := fig1Query()
	tr := BuildBFSTree(q, 0)
	want := 0
	perm := []graph.QueryVertex{0, 1, 2, 3}
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			o := append(Order(nil), perm...)
			if o.Validate(tr) == nil {
				want++
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if got := len(AllConnected(tr, 0)); got != want {
		t.Errorf("AllConnected found %d orders, brute force %d", got, want)
	}
}
