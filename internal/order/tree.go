// Package order builds query spanning trees and matching orders.
//
// The paper transforms the query graph into a BFS spanning tree t_q
// (Section V-A), classifies the remaining query edges as non-tree edges, and
// derives a matching order O by ordering the root-to-leaf paths of t_q
// (the "path-based method" of Section V-B). Any connected order that lists a
// vertex after its tree parent is legal for the FAST kernel, so this package
// also provides the alternative orders used by the Fig. 15 experiment
// (CFL-like, DAF-like, CECI-like and random connected topological orders).
package order

import (
	"fmt"

	"fastmatch/graph"
)

// Tree is a BFS spanning tree of a query graph. Vertex 'Root' has Parent -1.
// NonTreeEdges lists every query edge absent from the tree, each reported
// once as (u, v) with u appearing in BFS order before v.
type Tree struct {
	Query        *graph.Query
	Root         graph.QueryVertex
	Parent       []graph.QueryVertex   // -1 for root
	Children     [][]graph.QueryVertex // tree children in BFS discovery order
	Level        []int                 // BFS depth, root = 0
	BFSOrder     []graph.QueryVertex   // vertices in BFS discovery order
	NonTreeEdges [][2]graph.QueryVertex
}

// BuildBFSTree constructs the BFS spanning tree of q rooted at root.
func BuildBFSTree(q *graph.Query, root graph.QueryVertex) *Tree {
	n := q.NumVertices()
	t := &Tree{
		Query:    q,
		Root:     root,
		Parent:   make([]graph.QueryVertex, n),
		Children: make([][]graph.QueryVertex, n),
		Level:    make([]int, n),
		BFSOrder: make([]graph.QueryVertex, 0, n),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
		t.Level[i] = -1
	}
	queue := []graph.QueryVertex{root}
	t.Level[root] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		t.BFSOrder = append(t.BFSOrder, u)
		for _, v := range q.Neighbors(u) {
			if t.Level[v] == -1 && v != root {
				t.Level[v] = t.Level[u] + 1
				t.Parent[v] = u
				t.Children[u] = append(t.Children[u], v)
				queue = append(queue, v)
			}
		}
	}
	// Classify non-tree edges: every query edge that is not a parent link.
	pos := make([]int, n)
	for i, u := range t.BFSOrder {
		pos[u] = i
	}
	for _, u := range t.BFSOrder {
		for _, v := range q.Neighbors(u) {
			if t.Parent[v] == u || t.Parent[u] == v {
				continue
			}
			if pos[u] < pos[v] {
				t.NonTreeEdges = append(t.NonTreeEdges, [2]graph.QueryVertex{u, v})
			}
		}
	}
	return t
}

// IsTreeEdge reports whether (u,v) is a parent-child link in the tree.
func (t *Tree) IsTreeEdge(u, v graph.QueryVertex) bool {
	return t.Parent[u] == v || t.Parent[v] == u
}

// NonTreeNeighbors returns the non-tree neighbours of u (query neighbours
// that are neither its parent nor its children in the tree).
func (t *Tree) NonTreeNeighbors(u graph.QueryVertex) []graph.QueryVertex {
	var out []graph.QueryVertex
	for _, v := range t.Query.Neighbors(u) {
		if !t.IsTreeEdge(u, v) {
			out = append(out, v)
		}
	}
	return out
}

// Leaves returns the tree's leaf vertices in BFS order.
func (t *Tree) Leaves() []graph.QueryVertex {
	var out []graph.QueryVertex
	for _, u := range t.BFSOrder {
		if len(t.Children[u]) == 0 {
			out = append(out, u)
		}
	}
	return out
}

// RootToLeafPaths returns every root-to-leaf path of the tree, each path
// starting at the root.
func (t *Tree) RootToLeafPaths() [][]graph.QueryVertex {
	var paths [][]graph.QueryVertex
	var walk func(u graph.QueryVertex, prefix []graph.QueryVertex)
	walk = func(u graph.QueryVertex, prefix []graph.QueryVertex) {
		prefix = append(prefix, u)
		if len(t.Children[u]) == 0 {
			paths = append(paths, append([]graph.QueryVertex(nil), prefix...))
			return
		}
		for _, c := range t.Children[u] {
			walk(c, prefix)
		}
	}
	walk(t.Root, nil)
	return paths
}

// Validate checks the tree's structural invariants; tests use it.
func (t *Tree) Validate() error {
	n := t.Query.NumVertices()
	if len(t.BFSOrder) != n {
		return fmt.Errorf("tree covers %d of %d vertices", len(t.BFSOrder), n)
	}
	treeEdges := 0
	for u := 0; u < n; u++ {
		if u == t.Root {
			if t.Parent[u] != -1 {
				return fmt.Errorf("root %d has parent %d", u, t.Parent[u])
			}
			continue
		}
		p := t.Parent[u]
		if p < 0 {
			return fmt.Errorf("vertex %d unreachable", u)
		}
		if !t.Query.HasEdge(u, p) {
			return fmt.Errorf("tree edge (%d,%d) not in query", u, p)
		}
		if t.Level[u] != t.Level[p]+1 {
			return fmt.Errorf("vertex %d level %d, parent level %d", u, t.Level[u], t.Level[p])
		}
		treeEdges++
	}
	if treeEdges+len(t.NonTreeEdges) != t.Query.NumEdges() {
		return fmt.Errorf("edge classification: %d tree + %d non-tree != %d",
			treeEdges, len(t.NonTreeEdges), t.Query.NumEdges())
	}
	return nil
}
