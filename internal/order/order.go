package order

import (
	"fmt"
	"math/rand"
	"sort"

	"fastmatch/graph"
)

// Estimator supplies per-vertex candidate statistics to the order
// strategies. The CST implements it after construction; before CST exists,
// root selection uses LabelDegreeEstimator backed by the raw data graph.
type Estimator interface {
	// CandCount returns |C(u)|, the candidate-set size of query vertex u.
	CandCount(u graph.QueryVertex) int
	// AvgBranch returns the average number of CST children a candidate of
	// parent vertex up has towards child vertex uc (≥ 0).
	AvgBranch(up, uc graph.QueryVertex) float64
}

// Order is a matching order: a permutation of the query vertices. Position i
// holds the i-th vertex to be matched.
type Order []graph.QueryVertex

// PositionOf returns, for each query vertex, its index in the order.
func (o Order) PositionOf() []int {
	pos := make([]int, len(o))
	for i, u := range o {
		pos[u] = i
	}
	return pos
}

// Validate checks that o is a connected topological order of tree t:
// it starts at the root, every vertex appears exactly once, each vertex's
// tree parent precedes it, and each non-root vertex has some query neighbour
// before it (connectivity).
func (o Order) Validate(t *Tree) error {
	n := t.Query.NumVertices()
	if len(o) != n {
		return fmt.Errorf("order length %d, want %d", len(o), n)
	}
	if o[0] != t.Root {
		return fmt.Errorf("order starts at %d, want root %d", o[0], t.Root)
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, u := range o {
		if u < 0 || u >= n {
			return fmt.Errorf("order[%d] = %d out of range", i, u)
		}
		if pos[u] != -1 {
			return fmt.Errorf("vertex %d repeated", u)
		}
		pos[u] = i
	}
	for _, u := range o {
		if u == t.Root {
			continue
		}
		if pos[t.Parent[u]] > pos[u] {
			return fmt.Errorf("vertex %d precedes its tree parent %d", u, t.Parent[u])
		}
		connected := false
		for _, v := range t.Query.Neighbors(u) {
			if pos[v] < pos[u] {
				connected = true
				break
			}
		}
		if !connected {
			return fmt.Errorf("vertex %d has no earlier neighbour", u)
		}
	}
	return nil
}

// SelectRoot picks the CST root the way CFL-Match does: the query vertex
// minimising |C_ini(u)| / d_q(u), where C_ini(u) counts data vertices with
// u's label and at least u's degree.
func SelectRoot(q *graph.Query, g *graph.Graph) graph.QueryVertex {
	best, bestScore := 0, 0.0
	for u := 0; u < q.NumVertices(); u++ {
		count := 0
		for _, v := range g.VerticesWithLabel(q.Label(u)) {
			if g.Degree(v) >= q.Degree(u) {
				count++
			}
		}
		score := float64(count) / float64(q.Degree(u))
		if u == 0 || score < bestScore {
			best, bestScore = u, score
		}
	}
	return best
}

// PathBased implements the paper's matching-order strategy: decompose t into
// root-to-leaf paths, estimate each path's cost as the product of average
// branching factors along it, process cheap paths first, and emit vertices
// in path order skipping the ones already placed. The result is always a
// connected topological order of t.
func PathBased(t *Tree, est Estimator) Order {
	paths := t.RootToLeafPaths()
	type scored struct {
		path []graph.QueryVertex
		cost float64
	}
	items := make([]scored, len(paths))
	for i, p := range paths {
		cost := float64(est.CandCount(t.Root))
		for j := 1; j < len(p); j++ {
			b := est.AvgBranch(p[j-1], p[j])
			if b < 0.01 {
				b = 0.01 // keep the product meaningful on empty branches
			}
			cost *= b
		}
		items[i] = scored{p, cost}
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].cost < items[j].cost })
	placed := make([]bool, t.Query.NumVertices())
	o := make(Order, 0, t.Query.NumVertices())
	for _, it := range items {
		for _, u := range it.path {
			if !placed[u] {
				placed[u] = true
				o = append(o, u)
			}
		}
	}
	return o
}

// CFLLike mimics CFL-Match's ordering: paths sorted by estimated embedding
// count divided by non-tree-edge coverage; operationally we sort paths by
// cost ascending but break ties preferring paths with more non-tree edges to
// earlier vertices (postponing Cartesian products).
func CFLLike(t *Tree, est Estimator) Order {
	paths := t.RootToLeafPaths()
	type scored struct {
		path  []graph.QueryVertex
		cost  float64
		bonus int
	}
	items := make([]scored, len(paths))
	for i, p := range paths {
		cost := float64(est.CandCount(t.Root))
		bonus := 0
		for j := 1; j < len(p); j++ {
			b := est.AvgBranch(p[j-1], p[j])
			if b < 0.01 {
				b = 0.01
			}
			cost *= b
			bonus += len(t.NonTreeNeighbors(p[j]))
		}
		items[i] = scored{p, cost, bonus}
	}
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].bonus != items[j].bonus {
			return items[i].bonus > items[j].bonus
		}
		return items[i].cost < items[j].cost
	})
	placed := make([]bool, t.Query.NumVertices())
	o := make(Order, 0, t.Query.NumVertices())
	for _, it := range items {
		for _, u := range it.path {
			if !placed[u] {
				placed[u] = true
				o = append(o, u)
			}
		}
	}
	return o
}

// DAFLike mimics DAF's adaptive order: greedily pick, among the unplaced
// tree-eligible vertices (parent already placed), the one with the smallest
// candidate count, i.e. a candidate-size-first greedy order.
func DAFLike(t *Tree, est Estimator) Order {
	return greedy(t, func(u graph.QueryVertex) float64 {
		return float64(est.CandCount(u))
	})
}

// CECILike mimics CECI's BFS-rank order: vertices sorted by tree level first
// and candidate count second, which is a BFS traversal biased to small
// candidate sets within a level.
func CECILike(t *Tree, est Estimator) Order {
	return greedy(t, func(u graph.QueryVertex) float64 {
		return float64(t.Level[u])*1e9 + float64(est.CandCount(u))
	})
}

// greedy builds a connected topological order by repeatedly selecting the
// eligible vertex minimising score.
func greedy(t *Tree, score func(graph.QueryVertex) float64) Order {
	n := t.Query.NumVertices()
	placed := make([]bool, n)
	o := make(Order, 0, n)
	o = append(o, t.Root)
	placed[t.Root] = true
	for len(o) < n {
		best, bestScore := -1, 0.0
		for u := 0; u < n; u++ {
			if placed[u] || !placed[t.Parent[u]] {
				continue
			}
			s := score(u)
			if best == -1 || s < bestScore {
				best, bestScore = u, s
			}
		}
		placed[best] = true
		o = append(o, best)
	}
	return o
}

// RandomConnected returns a uniformly random connected topological order of
// t: at each step a random eligible vertex (tree parent placed and at least
// one query neighbour placed) is chosen. Used by the Fig. 15 experiment.
func RandomConnected(t *Tree, rng *rand.Rand) Order {
	n := t.Query.NumVertices()
	placed := make([]bool, n)
	o := make(Order, 0, n)
	o = append(o, t.Root)
	placed[t.Root] = true
	for len(o) < n {
		var eligible []graph.QueryVertex
		for u := 0; u < n; u++ {
			if placed[u] || !placed[t.Parent[u]] {
				continue
			}
			for _, v := range t.Query.Neighbors(u) {
				if placed[v] {
					eligible = append(eligible, u)
					break
				}
			}
		}
		pick := eligible[rng.Intn(len(eligible))]
		placed[pick] = true
		o = append(o, pick)
	}
	return o
}

// AllConnected enumerates every connected topological order of t, up to a
// cap (the Fig. 15 experiment tests "all other random connected orders";
// queries are tiny so full enumeration is feasible).
func AllConnected(t *Tree, cap int) []Order {
	n := t.Query.NumVertices()
	placed := make([]bool, n)
	cur := make(Order, 0, n)
	var out []Order
	var rec func()
	rec = func() {
		if cap > 0 && len(out) >= cap {
			return
		}
		if len(cur) == n {
			out = append(out, append(Order(nil), cur...))
			return
		}
		for u := 0; u < n; u++ {
			if placed[u] || !placed[t.Parent[u]] {
				continue
			}
			ok := false
			for _, v := range t.Query.Neighbors(u) {
				if placed[v] {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
			placed[u] = true
			cur = append(cur, u)
			rec()
			cur = cur[:len(cur)-1]
			placed[u] = false
		}
	}
	placed[t.Root] = true
	cur = append(cur, t.Root)
	rec()
	return out
}

// LabelDegreeEstimator estimates candidate counts straight from the data
// graph, for use before a CST exists (root selection, first ordering pass).
type LabelDegreeEstimator struct {
	Q *graph.Query
	G *graph.Graph
}

// CandCount counts data vertices passing the label-and-degree filter for u.
func (e LabelDegreeEstimator) CandCount(u graph.QueryVertex) int {
	count := 0
	for _, v := range e.G.VerticesWithLabel(e.Q.Label(u)) {
		if e.G.Degree(v) >= e.Q.Degree(u) {
			count++
		}
	}
	return count
}

// AvgBranch estimates branching (up → uc) as avg degree of the data graph
// scaled by the label frequency of uc's label.
func (e LabelDegreeEstimator) AvgBranch(up, uc graph.QueryVertex) float64 {
	n := e.G.NumVertices()
	if n == 0 {
		return 0
	}
	frac := float64(e.G.LabelFrequency(e.Q.Label(uc))) / float64(n)
	return e.G.AvgDegree() * frac
}
