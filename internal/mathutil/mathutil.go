// Package mathutil holds the tiny arithmetic helpers shared across the
// matching engine's packages. Plain min/max use the Go 1.21 builtins; only
// what the builtins don't cover lives here, so packages stop hand-rolling
// per-file copies.
package mathutil

// CeilDiv returns ⌈a/b⌉ for b > 0.
func CeilDiv[T ~int | ~int32 | ~int64](a, b T) T { return (a + b - 1) / b }
