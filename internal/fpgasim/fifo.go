package fpgasim

import "fmt"

// FIFO is a bounded first-in-first-out queue modelling the stream buffers
// inserted between modules by the task-parallelism optimisation
// (Section VI-C). It records its high-water mark so tests can confirm the
// kernel's buffer-bound argument and reports can size hardware FIFOs.
type FIFO[T any] struct {
	name      string
	buf       []T
	head      int
	capacity  int
	highWater int
	pushes    int64
	pops      int64
}

// NewFIFO creates a FIFO with the given capacity (0 means unbounded, used
// only by tests).
func NewFIFO[T any](name string, capacity int) *FIFO[T] {
	return &FIFO[T]{name: name, capacity: capacity}
}

// Push appends an item; it fails when the FIFO is full, which in hardware
// would stall the producer.
func (f *FIFO[T]) Push(item T) error {
	if f.capacity > 0 && f.Len() >= f.capacity {
		return fmt.Errorf("fifo %s: full at capacity %d", f.name, f.capacity)
	}
	f.buf = append(f.buf, item)
	if n := f.Len(); n > f.highWater {
		f.highWater = n
	}
	f.pushes++
	return nil
}

// Peek returns the oldest item without removing it; ok is false when empty.
func (f *FIFO[T]) Peek() (item T, ok bool) {
	if f.Len() == 0 {
		var zero T
		return zero, false
	}
	return f.buf[f.head], true
}

// Pop removes and returns the oldest item; ok is false when empty.
func (f *FIFO[T]) Pop() (item T, ok bool) {
	if f.Len() == 0 {
		var zero T
		return zero, false
	}
	item = f.buf[f.head]
	var zero T
	f.buf[f.head] = zero // release references
	f.head++
	f.pops++
	if f.head == len(f.buf) { // reclaim storage once drained
		f.buf = f.buf[:0]
		f.head = 0
	}
	return item, true
}

// Len returns the number of queued items.
func (f *FIFO[T]) Len() int { return len(f.buf) - f.head }

// Empty reports whether the FIFO holds no items.
func (f *FIFO[T]) Empty() bool { return f.Len() == 0 }

// HighWater returns the maximum occupancy observed.
func (f *FIFO[T]) HighWater() int { return f.highWater }

// Throughput returns total pushes and pops.
func (f *FIFO[T]) Throughput() (pushes, pops int64) { return f.pushes, f.pops }
