package fpgasim

// Module is a pipelined hardware module. A fully pipelined loop with fill
// depth D and initiation interval II processes n items in D + II·n cycles;
// II is 1 when every iteration's memory accesses hit BRAM, and rises to the
// DRAM latency when they do not (the FAST-DRAM variant) or when an edge
// probe exceeds the port budget.
type Module struct {
	Name  string
	Depth int64
	II    int64
}

// Cycles returns the cost of streaming n items through the module; an idle
// module (n == 0) costs nothing.
func (m Module) Cycles(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return m.Depth + m.II*n
}

// Serial composes module timings executed one after another (the basic
// pipeline of Fig. 5(a)): the total is the sum.
func Serial(cycles ...int64) int64 {
	var total int64
	for _, c := range cycles {
		total += c
	}
	return total
}

// Concurrent composes module timings executed simultaneously via FIFOs
// (task parallelism, Fig. 5(b)/(c)): the group finishes with its slowest
// member.
func Concurrent(cycles ...int64) int64 {
	var max int64
	for _, c := range cycles {
		if c > max {
			max = c
		}
	}
	return max
}

// Counter accumulates cycles per named module so reports can show where
// time went.
type Counter struct {
	total     int64
	perModule map[string]int64
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter {
	return &Counter{perModule: make(map[string]int64)}
}

// Add charges cycles to a module name and the total.
func (c *Counter) Add(module string, cycles int64) {
	c.perModule[module] += cycles
	c.total += cycles
}

// Total returns the accumulated cycle count.
func (c *Counter) Total() int64 { return c.total }

// PerModule returns a copy of the per-module breakdown.
func (c *Counter) PerModule() map[string]int64 {
	out := make(map[string]int64, len(c.perModule))
	for k, v := range c.perModule {
		out[k] = v
	}
	return out
}
