package fpgasim

import (
	"errors"
	"testing"
	"time"

	"fastmatch/internal/faultinject"
)

func newTestDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeviceFailRevive(t *testing.T) {
	d := newTestDevice(t)
	if !d.Healthy() {
		t.Fatal("new device not healthy")
	}
	if _, err := d.StageDRAM(1 << 10); err != nil {
		t.Fatalf("healthy staging failed: %v", err)
	}
	d.Fail()
	if d.Healthy() {
		t.Fatal("failed device reports healthy")
	}
	if _, err := d.StageDRAM(1 << 10); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("dead staging error = %v, want ErrDeviceFailed", err)
	}
	d.Revive()
	if _, err := d.StageDRAM(1 << 10); err != nil {
		t.Fatalf("revived staging failed: %v", err)
	}
}

func TestDeviceInjectedTransient(t *testing.T) {
	d := newTestDevice(t)
	d.Faults = faultinject.New(1, faultinject.Rule{
		Site: faultinject.SiteDeviceStage(0), Nth: []int64{1},
	})
	_, err := d.StageDRAM(1 << 10)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("injected transient error = %v, want ErrTransient", err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("transient error does not unwrap to the injected cause: %v", err)
	}
	if !d.Healthy() {
		t.Fatal("transient fault must not kill the device")
	}
	if _, err := d.StageDRAM(1 << 10); err != nil {
		t.Fatalf("staging after transient failed: %v", err)
	}
}

func TestDeviceInjectedDeath(t *testing.T) {
	d := newTestDevice(t)
	d.Faults = faultinject.New(1, faultinject.Rule{
		Site: faultinject.SiteDeviceStage(0), Kind: faultinject.Death, Nth: []int64{2}, Once: true,
	})
	if _, err := d.StageDRAM(1 << 10); err != nil {
		t.Fatalf("call 1 should be clean: %v", err)
	}
	if _, err := d.StageDRAM(1 << 10); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("death error = %v, want ErrDeviceFailed", err)
	}
	if d.Healthy() {
		t.Fatal("death must mark the device failed")
	}
	if _, err := d.StageDRAM(1 << 10); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("staging after death = %v, want ErrDeviceFailed", err)
	}
}

func TestDeviceInjectedLatencySpike(t *testing.T) {
	d := newTestDevice(t)
	clean, err := d.StageDRAM(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	spike := 10 * time.Millisecond
	d.Faults = faultinject.New(1, faultinject.Rule{
		Site: faultinject.SiteDeviceStage(0), Nth: []int64{1}, Delay: spike,
	})
	slow, err := d.StageDRAM(1 << 20)
	if err != nil {
		t.Fatalf("latency spike must not fail the call: %v", err)
	}
	if slow != clean+spike {
		t.Fatalf("spiked staging = %v, want %v + %v", slow, clean, spike)
	}
}
