package fpgasim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestConfigValidateRejectsBadValues(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.ClockMHz = 0 },
		func(c *Config) { c.BRAMLatency = 0 },
		func(c *Config) { c.DRAMLatency = 0 }, // < BRAMLatency
		func(c *Config) { c.BRAMBytes = 0 },
		func(c *Config) { c.PortMax = 0 },
		func(c *Config) { c.No = 0 },
		func(c *Config) { c.DRAMBurstBytes = 0 },
		func(c *Config) { c.PCIeGBps = 0 },
	}
	for i, mod := range mods {
		cfg := DefaultConfig()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCyclesToDuration(t *testing.T) {
	cfg := DefaultConfig() // 300 MHz → 300e6 cycles per second
	if got := cfg.CyclesToDuration(300_000_000); got != time.Second {
		t.Errorf("300M cycles = %v, want 1s", got)
	}
	if got := cfg.CyclesToDuration(300); got != time.Microsecond {
		t.Errorf("300 cycles = %v, want 1µs", got)
	}
}

func TestLoadCyclesAndPCIe(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.LoadCycles(0); got != 0 {
		t.Errorf("LoadCycles(0) = %d", got)
	}
	if got := cfg.LoadCycles(64); got != 1 {
		t.Errorf("LoadCycles(64) = %d, want 1", got)
	}
	if got := cfg.LoadCycles(65); got != 2 {
		t.Errorf("LoadCycles(65) = %d, want 2", got)
	}
	// 16 GB/s → 16 bytes per ns.
	if got := cfg.PCIeDuration(16_000_000_000); got != time.Second {
		t.Errorf("PCIe 16GB = %v, want 1s", got)
	}
}

func TestEdgeProbeII(t *testing.T) {
	cfg := DefaultConfig()
	if ii := cfg.EdgeProbeII(10); ii != 1 {
		t.Errorf("II(10) = %d, want 1", ii)
	}
	if ii := cfg.EdgeProbeII(cfg.PortMax); ii != 1 {
		t.Errorf("II(PortMax) = %d, want 1", ii)
	}
	if ii := cfg.EdgeProbeII(cfg.PortMax + 1); ii != 2 {
		t.Errorf("II(PortMax+1) = %d, want 2", ii)
	}
}

func TestModuleCycles(t *testing.T) {
	m := Module{Name: "gen", Depth: 3, II: 1}
	if got := m.Cycles(0); got != 0 {
		t.Errorf("idle module cost %d", got)
	}
	if got := m.Cycles(10); got != 13 {
		t.Errorf("Cycles(10) = %d, want 13", got)
	}
	slow := Module{Name: "dram", Depth: 3, II: 8}
	if got := slow.Cycles(10); got != 83 {
		t.Errorf("DRAM Cycles(10) = %d, want 83", got)
	}
}

func TestSerialAndConcurrent(t *testing.T) {
	if got := Serial(1, 2, 3); got != 6 {
		t.Errorf("Serial = %d", got)
	}
	if got := Concurrent(1, 5, 3); got != 5 {
		t.Errorf("Concurrent = %d", got)
	}
	if got := Concurrent(); got != 0 {
		t.Errorf("Concurrent() = %d", got)
	}
}

// Property: concurrent composition never exceeds serial composition — the
// basis of the paper's ≤50%/≤33% improvement caps.
func TestConcurrentLeqSerialProperty(t *testing.T) {
	check := func(a, b, c uint16) bool {
		x, y, z := int64(a), int64(b), int64(c)
		return Concurrent(x, y, z) <= Serial(x, y, z)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestFIFO(t *testing.T) {
	f := NewFIFO[int]("tv", 2)
	if !f.Empty() {
		t.Error("new FIFO not empty")
	}
	if err := f.Push(1); err != nil {
		t.Fatal(err)
	}
	if err := f.Push(2); err != nil {
		t.Fatal(err)
	}
	if err := f.Push(3); err == nil {
		t.Error("push into full FIFO succeeded")
	}
	if v, ok := f.Pop(); !ok || v != 1 {
		t.Errorf("Pop = %d,%v", v, ok)
	}
	if v, ok := f.Pop(); !ok || v != 2 {
		t.Errorf("Pop = %d,%v", v, ok)
	}
	if _, ok := f.Pop(); ok {
		t.Error("pop from empty FIFO succeeded")
	}
	if f.HighWater() != 2 {
		t.Errorf("HighWater = %d, want 2", f.HighWater())
	}
	pushes, pops := f.Throughput()
	if pushes != 2 || pops != 2 {
		t.Errorf("Throughput = %d,%d", pushes, pops)
	}
}

func TestFIFOOrderProperty(t *testing.T) {
	check := func(items []int32) bool {
		f := NewFIFO[int32]("x", 0)
		for _, it := range items {
			if err := f.Push(it); err != nil {
				return false
			}
		}
		for _, want := range items {
			got, ok := f.Pop()
			if !ok || got != want {
				return false
			}
		}
		return f.Empty()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("gen", 10)
	c.Add("edge", 5)
	c.Add("gen", 1)
	if c.Total() != 16 {
		t.Errorf("Total = %d", c.Total())
	}
	pm := c.PerModule()
	if pm["gen"] != 11 || pm["edge"] != 5 {
		t.Errorf("PerModule = %v", pm)
	}
}

func TestDeviceResourceAccounting(t *testing.T) {
	d, err := NewDevice(0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AllocBRAM(d.Cfg.BRAMBytes); err != nil {
		t.Fatalf("full BRAM alloc failed: %v", err)
	}
	if err := d.AllocBRAM(1); err == nil {
		t.Error("BRAM overflow accepted")
	}
	d.FreeBRAM(d.Cfg.BRAMBytes)
	if d.BRAMUsed() != 0 {
		t.Errorf("BRAMUsed = %d", d.BRAMUsed())
	}
	if _, err := d.StageDRAM(d.Cfg.DRAMBytes + 1); err == nil {
		t.Error("DRAM overflow accepted")
	}
	dur, err := d.StageDRAM(1 << 20)
	if err != nil || dur <= 0 {
		t.Errorf("StageDRAM: %v, %v", dur, err)
	}
	d.ReleaseDRAM(1 << 20)
	d.RunKernel(3000)
	if d.Cycles() != 3000 || d.Kernels() != 1 || d.Busy() <= 0 {
		t.Errorf("kernel accounting: %v", d)
	}
	if d.TransferredBytes() != 1<<20 {
		t.Errorf("TransferredBytes = %d", d.TransferredBytes())
	}
	if _, err := NewDevice(0, Config{}); err == nil {
		t.Error("NewDevice accepted zero config")
	}
}
