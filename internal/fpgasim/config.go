// Package fpgasim is the FPGA substrate this reproduction substitutes for
// the paper's Alveo U200 card. It models the device at the transaction
// level: pipelined modules with a fill depth and an initiation interval,
// bounded FIFOs, BRAM (1-cycle) versus DRAM (≈8-cycle) reads, burst
// DRAM→BRAM loads, PCIe transfers and the port budget of partitioned
// arrays. The FAST kernel (package core) performs the real enumeration work
// while charging cycles to this model, so the reported FPGA time follows
// exactly the cycle equations (1)–(4) the paper derives.
package fpgasim

import (
	"fmt"
	"time"
)

// Config describes one FPGA card. The defaults mirror the paper's setup
// (Section VII): an Alveo U200 at 300 MHz with 35 MB of BRAM and 64 GB of
// DRAM, attached over PCIe gen3×16.
type Config struct {
	// ClockMHz is the kernel clock. The paper quotes 300 MHz and stresses
	// FPGAs run ~10× slower than CPUs, so pipelining must make up for it.
	ClockMHz float64
	// BRAMLatency and DRAMLatency are read latencies in cycles (1 vs 7–8
	// in Section V-B); their ratio drives the Fig. 7 experiment.
	BRAMLatency int
	DRAMLatency int
	// BRAMBytes is the on-chip memory budget shared by the CST partition
	// and the partial-results buffer.
	BRAMBytes int64
	// DRAMBytes is the off-chip capacity (CST staging + result flush).
	DRAMBytes int64
	// PortMax is the maximum number of access ports an array partition can
	// expose; adjacency lists longer than PortMax cannot be probed in one
	// cycle (Section VI-A), which is why the partitioner bounds D_CST.
	PortMax int
	// No is the maximum number of partial results expanded per round
	// (Section VI-B); the buffer reserves (|V(q)|−1)·No slots.
	No int
	// FIFODepth bounds the inter-module FIFOs of the task-parallel
	// variants.
	FIFODepth int
	// DRAMBurstBytes is how many bytes one burst cycle moves when loading
	// a CST partition from DRAM into BRAM.
	DRAMBurstBytes int64
	// PCIeGBps is host→card bandwidth for offloading CST partitions.
	PCIeGBps float64

	// Module fill depths (pipeline latency before the first item emerges),
	// one per Algorithm 5–8 stage; Section VI-B's L1..L6.
	DepthRead     int64 // L1: read from the intermediate results buffer
	DepthGen      int64 // L2: generate a partial result po and its tv
	DepthVisited  int64 // L3: process tv
	DepthCollect  int64 // L4: collect po
	DepthTnGen    int64 // L5: generate a tn
	DepthEdge     int64 // L6: process tn
	RoundOverhead int64 // per-round control overhead (loop restart, next-level select)
}

// DefaultConfig returns the U200-like configuration used throughout the
// experiments.
func DefaultConfig() Config {
	return Config{
		ClockMHz:       300,
		BRAMLatency:    1,
		DRAMLatency:    8,
		BRAMBytes:      35 << 20,
		DRAMBytes:      64 << 30,
		PortMax:        512,
		No:             4096,
		FIFODepth:      512,
		DRAMBurstBytes: 64,
		PCIeGBps:       16,
		DepthRead:      2,
		DepthGen:       3,
		DepthVisited:   2,
		DepthCollect:   2,
		DepthTnGen:     2,
		DepthEdge:      4,
		RoundOverhead:  4,
	}
}

// Validate rejects configurations the hardware could not realise.
func (c Config) Validate() error {
	switch {
	case c.ClockMHz <= 0:
		return fmt.Errorf("fpgasim: clock %v MHz", c.ClockMHz)
	case c.BRAMLatency < 1 || c.DRAMLatency < c.BRAMLatency:
		return fmt.Errorf("fpgasim: latencies BRAM=%d DRAM=%d", c.BRAMLatency, c.DRAMLatency)
	case c.BRAMBytes <= 0 || c.DRAMBytes <= 0:
		return fmt.Errorf("fpgasim: memory sizes BRAM=%d DRAM=%d", c.BRAMBytes, c.DRAMBytes)
	case c.PortMax < 1:
		return fmt.Errorf("fpgasim: PortMax=%d", c.PortMax)
	case c.No < 1:
		return fmt.Errorf("fpgasim: No=%d", c.No)
	case c.DRAMBurstBytes < 1:
		return fmt.Errorf("fpgasim: DRAMBurstBytes=%d", c.DRAMBurstBytes)
	case c.PCIeGBps <= 0:
		return fmt.Errorf("fpgasim: PCIeGBps=%v", c.PCIeGBps)
	}
	return nil
}

// CyclesToDuration converts kernel cycles into wall time at the configured
// clock.
func (c Config) CyclesToDuration(cycles int64) time.Duration {
	return time.Duration(float64(cycles) / (c.ClockMHz * 1e6) * float64(time.Second))
}

// LoadCycles is the burst cost of moving bytes from DRAM into BRAM.
func (c Config) LoadCycles(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	return (bytes + c.DRAMBurstBytes - 1) / c.DRAMBurstBytes
}

// PCIeDuration is the host-side cost of shipping bytes to the card.
func (c Config) PCIeDuration(bytes int64) time.Duration {
	return time.Duration(float64(bytes) / (c.PCIeGBps * 1e9) * float64(time.Second))
}

// EdgeProbeII returns the initiation interval of the Edge Validator for a
// CST whose longest candidate adjacency list is maxDeg: one cycle when the
// partitioned array's ports cover the list, ⌈maxDeg/PortMax⌉ otherwise
// (the graceful fallback for unsplittable CSTs).
func (c Config) EdgeProbeII(maxDeg int) int64 {
	if maxDeg <= c.PortMax {
		return 1
	}
	return int64((maxDeg + c.PortMax - 1) / c.PortMax)
}
