package fpgasim

import (
	"errors"
	"fmt"
	"time"

	"fastmatch/internal/faultinject"
)

// ErrDeviceFailed reports an operation against a dead card. Errors returned
// by a failed Device wrap it, so errors.Is(err, ErrDeviceFailed) identifies
// device loss regardless of the message. Device death is permanent for the
// card (Healthy stays false until Revive); the host degrades by moving the
// card's queued partitions to surviving devices or the CPU share.
var ErrDeviceFailed = errors.New("fpgasim: device failed")

// ErrTransient reports a transient, retryable device fault (an injected
// PCIe hiccup). The host retries these under its RetryPolicy; the card is
// healthy again on the next attempt.
var ErrTransient = errors.New("fpgasim: transient device fault")

// Device models one FPGA card: a cycle counter, a BRAM allocator and a DRAM
// staging area. The host scheduler owns one Device per card (the multi-FPGA
// extension of Section VII-E hands CSTs to the device with the least
// accumulated work).
//
// A Device also models failure: Fail marks the card dead — every staging
// call after that returns an error wrapping ErrDeviceFailed — and the
// optional fault Injector turns staging calls into scheduled transient
// faults, latency spikes or one-shot deaths, deterministically per seed.
type Device struct {
	ID  int
	Cfg Config
	// Faults, when non-nil, is evaluated on every StageDRAM call at site
	// faultinject.SiteDeviceStage(ID). nil injects nothing.
	Faults *faultinject.Injector

	cycles    int64
	busy      time.Duration // accumulated kernel busy time
	bramUsed  int64
	dramUsed  int64
	transfers int64 // bytes shipped over PCIe
	kernels   int   // CST partitions processed
	aborts    int   // kernel executions the host cancelled mid-flight
	failed    bool  // dead card: staging fails until Revive
}

// NewDevice creates a Device with the given configuration.
func NewDevice(id int, cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{ID: id, Cfg: cfg}, nil
}

// AllocBRAM reserves on-chip memory, failing when the budget is exhausted —
// exactly the condition CST partitioning exists to avoid.
func (d *Device) AllocBRAM(bytes int64) error {
	if d.bramUsed+bytes > d.Cfg.BRAMBytes {
		return fmt.Errorf("fpgasim: BRAM overflow: %d + %d > %d", d.bramUsed, bytes, d.Cfg.BRAMBytes)
	}
	d.bramUsed += bytes
	return nil
}

// FreeBRAM releases on-chip memory.
func (d *Device) FreeBRAM(bytes int64) {
	d.bramUsed -= bytes
	if d.bramUsed < 0 {
		d.bramUsed = 0
	}
}

// BRAMUsed returns current on-chip occupancy.
func (d *Device) BRAMUsed() int64 { return d.bramUsed }

// StageDRAM accounts a CST partition arriving in card DRAM over PCIe and
// returns the host-side transfer duration. A dead card fails with an error
// wrapping ErrDeviceFailed; an injected transient fault fails with one
// wrapping ErrTransient (retryable); an injected latency spike adds its
// delay to the modelled transfer time. The caller must serialize calls per
// device (the host does: sequentially, or under its device mutex).
func (d *Device) StageDRAM(bytes int64) (time.Duration, error) {
	if d.failed {
		return 0, fmt.Errorf("fpgasim: device %d: %w", d.ID, ErrDeviceFailed)
	}
	var spike time.Duration
	if out := d.Faults.Eval(faultinject.SiteDeviceStage(d.ID)); out.Fault {
		switch out.Kind {
		case faultinject.Death:
			d.failed = true
			return 0, fmt.Errorf("fpgasim: device %d died staging %d bytes: %w", d.ID, bytes, ErrDeviceFailed)
		default:
			// Device sites model hardware, which fails rather than panics:
			// a Panic rule scheduled here degrades to a transient fault.
			return 0, fmt.Errorf("fpgasim: device %d staging %d bytes: %w (%w)", d.ID, bytes, ErrTransient, out.Error())
		}
	} else {
		spike = out.Delay
	}
	if d.dramUsed+bytes > d.Cfg.DRAMBytes {
		return 0, fmt.Errorf("fpgasim: DRAM overflow: %d + %d > %d", d.dramUsed, bytes, d.Cfg.DRAMBytes)
	}
	d.dramUsed += bytes
	d.transfers += bytes
	return d.Cfg.PCIeDuration(bytes) + spike, nil
}

// Fail marks the card dead, as a scheduled Death outcome does. Staging
// calls fail with ErrDeviceFailed until Revive.
func (d *Device) Fail() { d.failed = true }

// Revive returns a dead card to service — the model of a card re-flashed
// and re-enumerated. Counters are preserved.
func (d *Device) Revive() { d.failed = false }

// Healthy reports whether the card accepts work.
func (d *Device) Healthy() bool { return !d.failed }

// ReleaseDRAM frees staged bytes after a kernel run retires.
func (d *Device) ReleaseDRAM(bytes int64) {
	d.dramUsed -= bytes
	if d.dramUsed < 0 {
		d.dramUsed = 0
	}
}

// RunKernel charges a kernel execution of the given cycle count.
func (d *Device) RunKernel(cycles int64) {
	d.cycles += cycles
	d.busy += d.Cfg.CyclesToDuration(cycles)
	d.kernels++
}

// AbortKernel charges a kernel execution the host cancelled between batch
// rounds: the cycles already spent stay on the card's counters (the
// hardware really ran them before it observed the abort line), but the run
// is tallied as an abort, not a completed kernel, so reports can show how
// much modelled work a deadline threw away.
func (d *Device) AbortKernel(cycles int64) {
	d.cycles += cycles
	d.busy += d.Cfg.CyclesToDuration(cycles)
	d.aborts++
}

// Aborts returns how many kernel executions were cancelled mid-flight.
func (d *Device) Aborts() int { return d.aborts }

// Cycles returns total charged cycles.
func (d *Device) Cycles() int64 { return d.cycles }

// Busy returns the device's accumulated busy time.
func (d *Device) Busy() time.Duration { return d.busy }

// Kernels returns how many CST partitions this device has processed.
func (d *Device) Kernels() int { return d.kernels }

// TransferredBytes returns the total PCIe traffic.
func (d *Device) TransferredBytes() int64 { return d.transfers }

// String summarises the device state.
func (d *Device) String() string {
	return fmt.Sprintf("Device{%d kernels=%d cycles=%d busy=%v pcie=%dB}",
		d.ID, d.kernels, d.cycles, d.busy, d.transfers)
}
