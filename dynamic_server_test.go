package fast

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fastmatch/ldbc"
)

// TestServerDelta: the mutation endpoint commits a batch, reports the new
// epoch, surfaces validation errors as 400s, and the delta/epoch counters
// land in /metrics.
func TestServerDelta(t *testing.T) {
	s, r, gA := serverFixture(t, 2, 0)

	n := gA.NumVertices()
	body := `{"add_vertices":[0],"add_edges":[[` + jsonInt(n) + `,1],[` + jsonInt(n) + `,2]]}`
	w := postJSON(t, s, "/v1/graphs/a/delta", body)
	if w.Code != http.StatusOK {
		t.Fatalf("delta status %d: %s", w.Code, w.Body)
	}
	var res deltaResponse
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || res.Vertices != gA.NumVertices()+1 || res.Edges != gA.NumEdges()+2 || res.Touched == 0 {
		t.Fatalf("delta response %+v", res)
	}

	// Unknown graph and invalid batch keep their envelopes.
	if w := postJSON(t, s, "/v1/graphs/ghost/delta", `{}`); w.Code != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d", w.Code)
	}
	if w := postJSON(t, s, "/v1/graphs/a/delta", `{"add_edges":[[3,3]]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("self loop: status %d, %s", w.Code, w.Body)
	}
	if w := postJSON(t, s, "/v1/graphs/a/delta", `{"bogus":1}`); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", w.Code)
	}

	// A concurrent swap turns the commit into a 409 conflict.
	_, gB := routerTestGraphs()
	applyDeltaCommitHook = func() {
		if err := r.SwapGraph("a", gB); err != nil {
			t.Errorf("SwapGraph in hook: %v", err)
		}
	}
	defer func() { applyDeltaCommitHook = nil }()
	w = postJSON(t, s, "/v1/graphs/a/delta", `{"add_vertices":[0]}`)
	applyDeltaCommitHook = nil
	if w.Code != http.StatusConflict {
		t.Fatalf("swap conflict: status %d, %s", w.Code, w.Body)
	}
	var e errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Reason != "conflict" {
		t.Fatalf("swap conflict envelope: %s (%v)", w.Body, err)
	}

	// Metrics: the swap reset the epoch gauge; the committed delta still
	// counted (counters carry over swaps, like calls and failures).
	mw := httptest.NewRecorder()
	s.ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, want := range []string{
		`fastmatch_deltas_total{graph="a"} 1`,
		`fastmatch_epoch{graph="a"} 0`,
		`fastmatch_subscriptions{graph="a"} 0`,
		"fastmatch_notifications_total",
	} {
		if !strings.Contains(mw.Body.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func jsonInt(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestServerSubscribeStream: the NDJSON subscription stream opens with a
// subscribed line at the current epoch, carries one line per committed
// batch whose added/removed agree with full re-match diffs, and closes with
// reason "swapped" when the graph is replaced.
func TestServerSubscribeStream(t *testing.T) {
	s, r, gA := serverFixture(t, 2, 0)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/graphs/a/subscribe?query=q1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	readLine := func() subscribeLine {
		t.Helper()
		lineCh := make(chan string, 1)
		go func() {
			if sc.Scan() {
				lineCh <- sc.Text()
			} else {
				close(lineCh)
			}
		}()
		select {
		case line, ok := <-lineCh:
			if !ok {
				t.Fatalf("stream ended early: %v", sc.Err())
			}
			var l subscribeLine
			if err := json.Unmarshal([]byte(line), &l); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", line, err)
			}
			return l
		case <-time.After(15 * time.Second):
			t.Fatal("timed out waiting for a subscription line")
		}
		panic("unreachable")
	}

	first := readLine()
	if !first.Subscribed || first.Graph != "a" || first.Query != "q1" || first.Epoch != 0 {
		t.Fatalf("first line %+v", first)
	}

	// Mutate: wire a fresh vertex into the graph; the standing query's line
	// must be the diff of full re-matches around the commit.
	q, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}
	before := fullMatchSet(t, r, "a", q)
	n := gA.NumVertices()
	w := postJSON(t, s, "/v1/graphs/a/delta",
		`{"add_vertices":[`+jsonInt(int(gA.Label(1)))+`],"add_edges":[[`+jsonInt(n)+`,1],[`+jsonInt(n)+`,2],[`+jsonInt(n)+`,3]]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("delta status %d: %s", w.Code, w.Body)
	}
	after := fullMatchSet(t, r, "a", q)

	line := readLine()
	if line.Epoch != 1 {
		t.Fatalf("delta line %+v, want epoch 1", line)
	}
	if got, want := embeddingKeys(line.Added), diffKeys(after, before); !sameKeySet(got, want) {
		t.Fatalf("added = %v, want %v", keys(got), keys(want))
	}
	if got, want := embeddingKeys(line.Removed), diffKeys(before, after); !sameKeySet(got, want) {
		t.Fatalf("removed = %v, want %v", keys(got), keys(want))
	}

	// Swap closes the stream with its reason.
	_, gB := routerTestGraphs()
	if err := r.SwapGraph("a", gB); err != nil {
		t.Fatal(err)
	}
	last := readLine()
	if !last.Closed || last.Reason != "swapped" {
		t.Fatalf("terminal line %+v, want closed/swapped", last)
	}
}

// TestServerSubscribeBadRequests: parameter and registration errors keep
// their JSON envelopes and status codes.
func TestServerSubscribeBadRequests(t *testing.T) {
	s, _, _ := serverFixture(t, 2, 0)
	get := func(url string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, url, nil))
		return w
	}
	if w := get("/v1/graphs/a/subscribe"); w.Code != http.StatusBadRequest {
		t.Fatalf("missing query: status %d", w.Code)
	}
	if w := get("/v1/graphs/a/subscribe?query=nope"); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown query name: status %d", w.Code)
	}
	if w := get("/v1/graphs/ghost/subscribe?query=q1"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d", w.Code)
	}

	// A server without named queries cannot serve subscriptions.
	r2 := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(1)})
	g, _ := routerTestGraphs()
	if err := r2.AddGraph("a", g, nil); err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(r2, ServerOptions{})
	w := httptest.NewRecorder()
	s2.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/graphs/a/subscribe?query=q1", nil))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("no QueryByName: status %d", w.Code)
	}
	var e errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Reason != "bad_request" {
		t.Fatalf("envelope: %s (%v)", w.Body, err)
	}
}
